package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// ReadBenchFile loads a BENCH_<rev>.json performance summary.
func ReadBenchFile(path string) (BenchSummary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchSummary{}, fmt.Errorf("obs: bench summary read: %w", err)
	}
	var b BenchSummary
	if err := json.Unmarshal(data, &b); err != nil {
		return BenchSummary{}, fmt.Errorf("obs: bench summary parse %s: %w", path, err)
	}
	return b, nil
}

// CounterDelta is one work counter compared across two revisions.
type CounterDelta struct {
	Name      string
	Base, New int64
}

// BenchDelta is the per-experiment comparison of two bench summaries. An
// experiment may exist in only one side (InBase/InNew) — a renamed probe
// row or a newly added experiment.
type BenchDelta struct {
	ID            string
	InBase, InNew bool
	BaseSeconds   float64
	NewSeconds    float64
	BaseError     string
	NewError      string
	Counters      []CounterDelta // union of counter names, sorted; only entries that changed
	// BaseCounters/NewCounters are each side's full counter maps (nil for
	// a missing side): direction-aware gates like the BENCH.converge rows
	// need a counter's value even when it did not change.
	BaseCounters map[string]int64
	NewCounters  map[string]int64
}

// ConvergeRowPrefix marks bench rows that measure queries-to-accuracy
// (emitted by cmd/repro's converge probe). Unlike wall-clock rows, these
// gate on the ConvergeCounter work counter, and lower is better: a larger
// value means the attack needed more queries to reach the same accuracy —
// the decoder got weaker — regardless of how fast the probe ran.
const ConvergeRowPrefix = "BENCH.converge."

// ConvergeCounter is the counter a BENCH.converge row is gated on: the
// cumulative query count at which the row's accuracy milestone was
// reached.
const ConvergeCounter = "converge.queries"

// SecondsPct returns the wall-clock change in percent relative to the
// baseline (0 when the baseline is zero or a side is missing).
func (d BenchDelta) SecondsPct() float64 {
	if !d.InBase || !d.InNew || d.BaseSeconds == 0 {
		return 0
	}
	return 100 * (d.NewSeconds - d.BaseSeconds) / d.BaseSeconds
}

// BenchDiff is the full comparison of two BENCH_<rev>.json summaries — the
// unit cmd/benchdiff prints and gates on.
type BenchDiff struct {
	Base, New BenchSummary
	Rows      []BenchDelta
}

// DiffBench compares two bench summaries experiment by experiment:
// baseline order first, then experiments only present in the new summary.
// Duplicate ids keep their first occurrence.
func DiffBench(base, cur BenchSummary) BenchDiff {
	diff := BenchDiff{Base: base, New: cur}
	newByID := map[string]BenchEntry{}
	for _, e := range cur.Experiments {
		if _, ok := newByID[e.ID]; !ok {
			newByID[e.ID] = e
		}
	}
	seen := map[string]bool{}
	for _, b := range base.Experiments {
		if seen[b.ID] {
			continue
		}
		seen[b.ID] = true
		d := BenchDelta{ID: b.ID, InBase: true, BaseSeconds: b.Seconds, BaseError: b.Error, BaseCounters: b.Counters}
		if n, ok := newByID[b.ID]; ok {
			d.InNew = true
			d.NewSeconds = n.Seconds
			d.NewError = n.Error
			d.Counters = diffCounters(b.Counters, n.Counters)
			d.NewCounters = n.Counters
		}
		diff.Rows = append(diff.Rows, d)
	}
	for _, n := range cur.Experiments {
		if seen[n.ID] {
			continue
		}
		seen[n.ID] = true
		diff.Rows = append(diff.Rows, BenchDelta{
			ID: n.ID, InNew: true, NewSeconds: n.Seconds, NewError: n.Error,
			Counters: diffCounters(nil, n.Counters), NewCounters: n.Counters,
		})
	}
	return diff
}

// diffCounters returns the changed work counters across the union of both
// maps, name-sorted.
func diffCounters(base, cur map[string]int64) []CounterDelta {
	names := map[string]bool{}
	for name := range base {
		names[name] = true
	}
	for name := range cur {
		names[name] = true
	}
	var out []CounterDelta
	for name := range names {
		if base[name] != cur[name] {
			out = append(out, CounterDelta{Name: name, Base: base[name], New: cur[name]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Fprint renders the delta table: one row per experiment with baseline and
// new wall-clock plus the percentage change, indented lines for every work
// counter that moved (oracle queries, simplex pivots, SAT conflicts, ...),
// and a TOTAL row.
func (diff BenchDiff) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "benchdiff %s -> %s (base seed %d quick=%v, new seed %d quick=%v)\n",
		diff.Base.Rev, diff.New.Rev, diff.Base.Seed, diff.Base.Quick, diff.New.Seed, diff.New.Quick); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-28s %10s %10s %10s %9s\n", "experiment", "base s", "new s", "delta s", "delta %"); err != nil {
		return err
	}
	for _, d := range diff.Rows {
		var line string
		switch {
		case d.InBase && !d.InNew:
			line = fmt.Sprintf("  %-28s %10.3f %10s %10s %9s", d.ID, d.BaseSeconds, "-", "-", "gone")
		case !d.InBase && d.InNew:
			line = fmt.Sprintf("  %-28s %10s %10.3f %10s %9s", d.ID, "-", d.NewSeconds, "-", "new")
		default:
			line = fmt.Sprintf("  %-28s %10.3f %10.3f %+10.3f %+8.1f%%",
				d.ID, d.BaseSeconds, d.NewSeconds, d.NewSeconds-d.BaseSeconds, d.SecondsPct())
		}
		if d.BaseError != "" || d.NewError != "" {
			line += fmt.Sprintf("  [base err=%q new err=%q]", d.BaseError, d.NewError)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		for _, c := range d.Counters {
			pct := ""
			if c.Base != 0 {
				pct = fmt.Sprintf(" (%+.1f%%)", 100*float64(c.New-c.Base)/float64(c.Base))
			}
			if _, err := fmt.Fprintf(w, "      %-26s %12d -> %-12d%s\n", c.Name, c.Base, c.New, pct); err != nil {
				return err
			}
		}
	}
	totalPct := 0.0
	if diff.Base.TotalSeconds > 0 {
		totalPct = 100 * (diff.New.TotalSeconds - diff.Base.TotalSeconds) / diff.Base.TotalSeconds
	}
	_, err := fmt.Fprintf(w, "  %-28s %10.3f %10.3f %+10.3f %+8.1f%%\n",
		"TOTAL", diff.Base.TotalSeconds, diff.New.TotalSeconds,
		diff.New.TotalSeconds-diff.Base.TotalSeconds, totalPct)
	return err
}

// MissingFromNew returns one violation per baseline experiment matching
// any of the id prefixes that is absent from the new summary. Regressions
// deliberately skips missing rows (probe ids may legitimately vary across
// hosts — BENCH.census.workers=N depends on the core count), which means a
// silently dropped probe would never trip the gate; requiring a prefix
// closes that gap for rows whose ids are host-independent (e.g.
// "BENCH.remote.").
func (diff BenchDiff) MissingFromNew(prefixes []string) []string {
	var out []string
	for _, d := range diff.Rows {
		if !d.InBase || d.InNew {
			continue
		}
		for _, p := range prefixes {
			if strings.HasPrefix(d.ID, p) {
				out = append(out, fmt.Sprintf("%s: required baseline row (prefix %q) missing from new summary", d.ID, p))
				break
			}
		}
	}
	return out
}

// Regressions returns one violation per experiment whose wall-clock grew
// by more than pct percent over a baseline of at least minSeconds (the
// floor keeps sub-noise experiments from tripping the gate), and per
// experiment that ran clean in the baseline but errored in the new run.
// Experiments missing from the new summary are reported by Fprint but are
// not violations: probe rows like BENCH.census.workers=N legitimately
// change id across hosts with different core counts.
//
// Rows under ConvergeRowPrefix invert the usual direction: they measure
// queries-to-accuracy via the ConvergeCounter work counter (deterministic
// per seed, so no noise floor applies) and regress when the counter GROWS
// by more than pct percent — more queries for the same accuracy is a
// weaker attack. Their wall clock (microseconds of probe time) is ignored.
func (diff BenchDiff) Regressions(pct, minSeconds float64) []string {
	var out []string
	for _, d := range diff.Rows {
		if !d.InBase || !d.InNew {
			continue
		}
		if d.BaseError == "" && d.NewError != "" {
			out = append(out, fmt.Sprintf("%s: errored in new run: %s", d.ID, d.NewError))
			continue
		}
		if d.BaseError != "" || d.NewError != "" {
			continue
		}
		if strings.HasPrefix(d.ID, ConvergeRowPrefix) {
			bq, nq := d.BaseCounters[ConvergeCounter], d.NewCounters[ConvergeCounter]
			switch {
			case bq <= 0:
				// Baseline row without the counter: nothing to gate on.
			case nq <= 0:
				out = append(out, fmt.Sprintf("%s: %s counter missing from new run", d.ID, ConvergeCounter))
			default:
				if p := 100 * float64(nq-bq) / float64(bq); p > pct {
					out = append(out, fmt.Sprintf("%s: queries-to-accuracy %d -> %d (%+.1f%%) exceeds +%.1f%% (lower is better)",
						d.ID, bq, nq, p, pct))
				}
			}
			continue
		}
		if d.BaseSeconds < minSeconds {
			continue
		}
		if p := d.SecondsPct(); p > pct {
			out = append(out, fmt.Sprintf("%s: %.3fs -> %.3fs (%+.1f%%) exceeds +%.1f%%",
				d.ID, d.BaseSeconds, d.NewSeconds, p, pct))
		}
	}
	return out
}
