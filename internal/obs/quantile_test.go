package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sampleQuantile is the oracle the bucket estimator is checked against:
// the nearest-rank quantile of the sorted sample.
func sampleQuantile(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return float64(sorted[rank-1])
}

func TestQuantileEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	s := r.Histogram("q.lat_ns").Stat()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if s.P50 != 0 || s.P99 != 0 || s.Buckets != nil {
		t.Errorf("empty stat = %+v", s)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	for _, v := range []int64{0, 1, 7, 8, 1000, 1 << 40} {
		r := NewRegistry()
		r.SetEnabled(true)
		h := r.Histogram("q.lat_ns")
		h.Observe(v)
		s := h.Stat()
		for _, q := range []float64{0, 0.001, 0.5, 0.99, 0.999, 1} {
			if got := s.Quantile(q); got != float64(v) {
				t.Errorf("single obs %d: Quantile(%v) = %v, want %v", v, q, got, v)
			}
		}
		if s.P50 != float64(v) || s.P999 != float64(v) {
			t.Errorf("single obs %d: stat quantiles = %+v", v, s)
		}
	}
}

// TestQuantileBucketEdgeExactness pins that a histogram whose containing
// bucket collapses to one distinct power-of-two value reports that value
// exactly: the min/max clamp removes all within-bucket interpolation
// error.
func TestQuantileBucketEdgeExactness(t *testing.T) {
	for _, v := range []int64{1, 2, 16, 1 << 20} {
		r := NewRegistry()
		r.SetEnabled(true)
		h := r.Histogram("q.lat_ns")
		for i := 0; i < 1000; i++ {
			h.Observe(v)
		}
		s := h.Stat()
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			if got := s.Quantile(q); got != float64(v) {
				t.Errorf("all-equal %d: Quantile(%v) = %v, want %v", v, q, got, v)
			}
		}
	}
}

// TestQuantileTwoPointSplit pins which bucket a mid-distribution rank
// resolves to: 90 observations of 1 and 10 of 1024 put p50 in the low
// bucket and p99 in the high one.
func TestQuantileTwoPointSplit(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("q.lat_ns")
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1024)
	}
	s := h.Stat()
	if got := s.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %v, want 1", got)
	}
	if got := s.Quantile(0.99); got != 1024 {
		t.Errorf("p99 = %v, want 1024 (clamped to the single high value)", got)
	}
	if s.Quantile(0) != 1 || s.Quantile(1) != 1024 {
		t.Errorf("extremes = %v / %v", s.Quantile(0), s.Quantile(1))
	}
}

// TestQuantileCrossCheckRandom checks the bucket estimator against sorted
// sample quantiles on random data: the estimate must land within the
// containing bucket's factor-of-2 width of the true sample quantile.
func TestQuantileCrossCheckRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dist := range []struct {
		name string
		draw func() int64
	}{
		{"uniform", func() int64 { return rng.Int63n(1 << 20) }},
		{"exponential", func() int64 { return int64(rng.ExpFloat64() * 5000) }},
		{"lognormal", func() int64 { return int64(math.Exp(rng.NormFloat64()*2 + 8)) }},
	} {
		r := NewRegistry()
		r.SetEnabled(true)
		h := r.Histogram("q.lat_ns")
		samples := make([]int64, 5000)
		for i := range samples {
			v := dist.draw()
			samples[i] = v
			h.Observe(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		s := h.Stat()
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			got := s.Quantile(q)
			want := sampleQuantile(samples, q)
			// The estimate and the truth must agree within one base-2
			// bucket: got in [want/2 - 1, 2*want + 1].
			if got < want/2-1 || got > 2*want+1 {
				t.Errorf("%s: Quantile(%v) = %v, sample quantile %v (outside factor-2 bucket bound)",
					dist.name, q, got, want)
			}
		}
		if s.P50 != s.Quantile(0.5) || s.P99 != s.Quantile(0.99) {
			t.Errorf("%s: stat fields disagree with Quantile", dist.name)
		}
	}
}

// TestQuantileDeltaWindow pins that Delta subtracts bucket counts, so the
// delta's quantiles describe only the window's observations.
func TestQuantileDeltaWindow(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("q.lat_ns")
	for i := 0; i < 100; i++ {
		h.Observe(1) // before the window: all tiny
	}
	before := r.Snapshot()
	for i := 0; i < 100; i++ {
		h.Observe(4096) // the window: all large
	}
	d := r.Snapshot().Delta(before)
	dh := d.Histograms["q.lat_ns"]
	if dh.Count != 100 {
		t.Fatalf("delta count = %d", dh.Count)
	}
	if dh.P50 != 4096 || dh.P99 != 4096 {
		t.Errorf("window quantiles = p50 %v p99 %v, want 4096 (pre-window 1s must not dilute)", dh.P50, dh.P99)
	}
}

func TestBucketBounds(t *testing.T) {
	if lo, hi := BucketBounds(0); lo != 0 || hi != 0 {
		t.Errorf("bucket 0 bounds = [%v,%v)", lo, hi)
	}
	if lo, hi := BucketBounds(4); lo != 8 || hi != 16 {
		t.Errorf("bucket 4 bounds = [%v,%v), want [8,16)", lo, hi)
	}
	for _, tc := range []struct {
		i    int
		want int64
	}{{0, 0}, {1, 1}, {2, 3}, {4, 15}, {63, math.MaxInt64}, {64, math.MaxInt64}} {
		if got := BucketUpperBound(tc.i); got != tc.want {
			t.Errorf("BucketUpperBound(%d) = %d, want %d", tc.i, got, tc.want)
		}
	}
}
