// Package serve is the live half of the observability stack: an HTTP
// server that exposes a running attack pipeline's obs state while it
// works. Endpoints:
//
//	/metrics       Prometheus text exposition of the registry snapshot
//	/snapshot      the raw obs.Snapshot as JSON
//	/healthz       run phase, uptime, journal event count
//	/journal       Server-Sent Events tail of the live run journal
//	/converge      attack convergence curves: full series as JSON, or a
//	               replay + live SSE tail with Accept: text/event-stream
//	/debug/pprof/  the stdlib pprof handlers
//
// The cmd tools start it with -serve addr (wired through Tool, the shared
// CLI helper in this package), so a quick scrape during a long run answers
// "how many oracle queries so far" without waiting for the final table.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"singlingout/internal/obs"
)

// SanitizeMetricName maps an obs metric name (dotted, e.g.
// "census.workers") to a valid Prometheus identifier
// ([a-zA-Z_:][a-zA-Z0-9_:]*): invalid runes become '_' and a leading
// digit is prefixed with '_'.
func SanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if r >= '0' && r <= '9' {
			if i == 0 {
				b.WriteByte('_')
			}
			valid = true
		}
		if !valid {
			r = '_'
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges verbatim under their
// sanitized names, histograms as native Prometheus histograms — the full
// cumulative `<name>_bucket{le="..."}` series (base-2 boundaries; empty
// buckets elided, `+Inf` always present) plus `<name>_sum` and
// `<name>_count`, so scrapers can run histogram_quantile — with run-wide
// <name>_min/_max/_mean and derived _p50/_p90/_p99/_p999 gauges
// alongside. Families are name-sorted so scrapes diff cleanly.
func WritePrometheus(w io.Writer, s obs.Snapshot) error {
	var b bytes.Buffer
	for _, name := range sortedKeys(s.Counters) {
		m := SanitizeMetricName(name)
		fmt.Fprintf(&b, "# HELP %s obs counter %s\n# TYPE %s counter\n%s %d\n",
			m, name, m, m, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		m := SanitizeMetricName(name)
		fmt.Fprintf(&b, "# HELP %s obs gauge %s\n# TYPE %s gauge\n%s %s\n",
			m, name, m, m, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		m := SanitizeMetricName(name)
		h := s.Histograms[name]
		fmt.Fprintf(&b, "# HELP %s obs histogram %s\n# TYPE %s histogram\n", m, name, m)
		var cum int64
		for i, c := range h.Buckets {
			if c == 0 {
				continue
			}
			cum += c
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", m, obs.BucketUpperBound(i), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", m, h.Sum, m, h.Count)
		for _, g := range []struct {
			suffix string
			v      float64
		}{
			{"max", float64(h.Max)}, {"mean", h.Mean}, {"min", float64(h.Min)},
			{"p50", h.P50}, {"p90", h.P90}, {"p99", h.P99}, {"p999", h.P999},
		} {
			fmt.Fprintf(&b, "# TYPE %s_%s gauge\n%s_%s %s\n", m, g.suffix, m, g.suffix, promFloat(g.v))
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Health is the /healthz response body.
type Health struct {
	Status        string  `json:"status"`
	Phase         string  `json:"phase"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	JournalEvents int     `json:"journal_events"`
	// JournalDropped counts events dropped for slow live subscribers (the
	// JSONL file never drops); a tail reader seeing this grow knows its
	// SSE stream has gaps.
	JournalDropped int64 `json:"journal_dropped,omitempty"`
}

// Server serves the observability endpoints for one registry and
// (optionally) one live journal. Create with New, bind with Start, stop
// with Close.
type Server struct {
	reg     *obs.Registry
	journal *obs.Journal  // nil: /journal responds 404
	tracer  *obs.Tracer   // never nil; /trace serves its dump
	curves  *obs.CurveSet // never nil; /converge serves it
	start   time.Time
	phase   atomic.Value // string
	mux     *http.ServeMux
	srv     *http.Server
	done    chan struct{}
}

// New builds a server over reg (usually obs.Default()) and journal (may be
// nil when no run journal exists; /journal then responds 404). The /trace
// endpoint serves the process-wide obs.DefaultTracer dump and /converge
// the process-wide obs.DefaultCurves set (override with SetCurves).
func New(reg *obs.Registry, journal *obs.Journal) *Server {
	s := &Server{
		reg:     reg,
		journal: journal,
		tracer:  obs.DefaultTracer(),
		curves:  obs.DefaultCurves(),
		start:   time.Now(),
		mux:     http.NewServeMux(),
		done:    make(chan struct{}),
	}
	s.phase.Store("init")
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/journal", s.handleJournal)
	s.mux.HandleFunc("/converge", s.handleConverge)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's mux (for tests via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// SetCurves points /converge at cs instead of the process-wide default
// set (tests serve an isolated CurveSet this way). Call before Start.
func (s *Server) SetCurves(cs *obs.CurveSet) { s.curves = cs }

// SetPhase updates the run phase /healthz reports (e.g. "E02",
// "bench_probe", "done").
func (s *Server) SetPhase(phase string) { s.phase.Store(phase) }

// Start binds addr (":0" picks a free port) and serves in the background,
// returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: %w", err)
	}
	s.srv = &http.Server{Handler: s.mux}
	//lint:ignore boundedgo HTTP accept loop, not work fan-out; its lifetime is bounded by Close
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Close force-closes the server, terminating in-flight SSE streams.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	close(s.done)
	err := s.srv.Close()
	s.srv = nil
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "singlingout observability (phase %s)\n\n", s.phase.Load())
	fmt.Fprint(w, "/metrics        Prometheus text exposition\n")
	fmt.Fprint(w, "/snapshot       obs.Snapshot JSON\n")
	fmt.Fprint(w, "/healthz        phase + uptime\n")
	fmt.Fprint(w, "/journal        SSE tail of the run journal\n")
	fmt.Fprint(w, "/converge       attack convergence curves (JSON; SSE with Accept: text/event-stream)\n")
	fmt.Fprint(w, "/trace          collected trace spans as an obs.TraceDump (JSON)\n")
	fmt.Fprint(w, "/debug/pprof/   stdlib profiling handlers\n")
}

// handleTrace serves the tracer's collected spans as a TraceDump, the
// payload a remote client merges into its own Chrome trace export
// (obs.Tracer.AddProcess) to interleave server-side spans with its own.
func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.tracer.Dump("singlingout server")) //nolint:errcheck // client gone
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WritePrometheus(w, s.reg.Snapshot()); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.reg.Snapshot()) //nolint:errcheck // client gone
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := Health{
		Status:        "ok",
		Phase:         s.phase.Load().(string),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if s.journal != nil {
		h.JournalEvents = s.journal.Events()
		h.JournalDropped = s.journal.Dropped()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h) //nolint:errcheck // client gone
}

// handleJournal streams the run journal as Server-Sent Events: the
// retained recent events first, then every event as it is emitted, until
// the client disconnects or the server closes.
func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		http.Error(w, "no run journal (start the tool with -metrics)", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	replay, ch, cancel := s.journal.Subscribe(64)
	defer cancel()
	for _, e := range replay {
		if writeSSE(w, e) != nil {
			return
		}
	}
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case e := <-ch:
			if writeSSE(w, e) != nil {
				return
			}
			fl.Flush()
		}
	}
}

func writeSSE(w io.Writer, e obs.Event) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: journal\ndata: %s\n\n", line)
	return err
}

// convergeSnapshot is the JSON /converge response body.
type convergeSnapshot struct {
	// Curves maps curve name to its full (x, y) series so far.
	Curves map[string][]obs.CurvePoint `json:"curves"`
	// Dropped counts samples dropped for slow SSE subscribers.
	Dropped int64 `json:"dropped"`
}

// handleConverge serves the attack convergence curves. The default
// response is a JSON snapshot of every curve's full series (the batch
// view: plot it after the run). With Accept: text/event-stream it
// streams instead — the retained recent samples first, then every
// sample as attacks add points, until the client disconnects or the
// server closes. Each SSE frame is one obs.CurveSample.
func (s *Server) handleConverge(w http.ResponseWriter, r *http.Request) {
	if !strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(convergeSnapshot{Curves: s.curves.Snapshot(), Dropped: s.curves.Dropped()}) //nolint:errcheck // client gone
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	replay, ch, cancel := s.curves.Subscribe(256)
	defer cancel()
	for _, sample := range replay {
		if writeSSECurve(w, sample) != nil {
			return
		}
	}
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case sample := <-ch:
			if writeSSECurve(w, sample) != nil {
				return
			}
			fl.Flush()
		}
	}
}

func writeSSECurve(w io.Writer, sample obs.CurveSample) error {
	line, err := json.Marshal(sample)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: converge\ndata: %s\n\n", line)
	return err
}
