package serve

import (
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"singlingout/internal/obs"
	"singlingout/internal/par"
)

// newTool builds a Tool from command-line-style args.
func newTool(t *testing.T, args ...string) *Tool {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tool := AddToolFlags(fs, "test")
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return tool
}

// TestToolFullLifecycle drives the shared cmd plumbing end to end:
// -metrics + -serve + -spans together, a pooled run in the middle, then
// Close, checking every artifact the flags promise.
func TestToolFullLifecycle(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "run.jsonl")
	spansPath := filepath.Join(dir, "run.trace.json")
	tool := newTool(t, "-metrics", journalPath, "-serve", "127.0.0.1:0", "-spans", spansPath)

	wasEnabled := obs.Default().Enabled()
	defer obs.Default().SetEnabled(wasEnabled)
	if err := tool.Start(); err != nil {
		t.Fatal(err)
	}
	if !tool.Observing() {
		t.Fatal("tool with -metrics must be observing")
	}
	if !obs.Default().Enabled() {
		t.Error("Start must enable the default registry for -metrics")
	}

	tool.Emit(obs.Event{Phase: "run_start", Seed: 2, Quick: true})
	tool.SetPhase("E01")
	if err := par.ForEach(2, 8, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	tool.Emit(obs.Event{Phase: "run_end", Seed: 2, Quick: true})

	resp, err := http.Get("http://" + tool.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Phase != "E01" || h.JournalEvents != 2 {
		t.Errorf("healthz during run = %+v", h)
	}

	if err := tool.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := tool.Close(); err != nil {
		t.Fatalf("second Close must be a no-op, got %v", err)
	}

	f, err := os.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(f)
	f.Close()
	if err != nil || len(events) != 2 {
		t.Fatalf("journal events = %d (%v), want 2", len(events), err)
	}

	data, err := os.ReadFile(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("span file is not Chrome trace JSON: %v", err)
	}
	items, lanes := 0, map[int]bool{}
	for _, e := range trace.TraceEvents {
		if e.Cat == "par.item" {
			items++
			lanes[e.TID] = true
		}
	}
	if items != 8 {
		t.Errorf("trace item events = %d, want 8", items)
	}
	if len(lanes) == 0 || len(lanes) > 2 {
		t.Errorf("trace worker lanes = %d, want 1-2", len(lanes))
	}
}

// TestToolServeOnlyStreamsJournal: -serve without -metrics still exposes a
// live SSE journal (backed by a discard writer) and /metrics.
func TestToolServeOnlyStreamsJournal(t *testing.T) {
	tool := newTool(t, "-serve", "127.0.0.1:0")
	wasEnabled := obs.Default().Enabled()
	defer obs.Default().SetEnabled(wasEnabled)
	if err := tool.Start(); err != nil {
		t.Fatal(err)
	}
	defer tool.Close() //nolint:errcheck
	if !tool.Observing() {
		t.Error("-serve alone must still create a journal for the SSE tail")
	}
	if tool.MetricsPath() != "" {
		t.Errorf("MetricsPath = %q, want empty", tool.MetricsPath())
	}
	tool.Emit(obs.Event{Phase: "run_start", Seed: 1})
	resp, err := http.Get("http://" + tool.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	json.NewDecoder(resp.Body).Decode(&h) //nolint:errcheck
	resp.Body.Close()
	if h.JournalEvents != 1 {
		t.Errorf("journal events over discard writer = %d, want 1", h.JournalEvents)
	}
}

func TestToolNoFlagsIsNoop(t *testing.T) {
	tool := newTool(t)
	if err := tool.Start(); err != nil {
		t.Fatal(err)
	}
	if tool.Observing() || tool.Addr() != "" {
		t.Error("flagless tool must not observe or serve")
	}
	tool.Emit(obs.Event{Phase: "run_start"}) // must not panic
	tool.SetPhase("x")                       // must not panic
	if err := tool.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestToolStartFailureUnwinds(t *testing.T) {
	dir := t.TempDir()
	tool := newTool(t, "-metrics", filepath.Join(dir, "missing-subdir", "run.jsonl"))
	err := tool.Start()
	if err == nil {
		t.Fatal("Start must fail for an uncreatable journal path")
	}
	if !strings.Contains(err.Error(), "metrics journal") {
		t.Errorf("error %q does not name the journal stage", err)
	}
}
