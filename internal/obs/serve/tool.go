package serve

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"singlingout/internal/obs"
)

// Tool is the shared observability plumbing of every cmd: it registers the
// -metrics (JSONL run journal), -serve (live HTTP endpoint), -spans
// (Chrome trace-event worker timeline) and standard profiling flags, and
// owns their lifecycle so each main only calls AddToolFlags / Start /
// Emit / Close instead of re-implementing repro-only wiring.
type Tool struct {
	name        string
	metricsPath *string
	serveAddr   *string
	spansPath   *string
	prof        *obs.Profiler

	stopProf    func() error
	journalFile *os.File
	journal     *obs.Journal
	server      *Server
	boundAddr   string
	closed      bool
}

// AddToolFlags registers the shared observability flags on fs (use
// flag.CommandLine in mains; name prefixes diagnostics) and returns the
// controller. Call Start after flag.Parse and Close before exiting.
func AddToolFlags(fs *flag.FlagSet, name string) *Tool {
	t := &Tool{name: name}
	t.metricsPath = fs.String("metrics", "", "write a JSONL run journal to this file")
	t.serveAddr = fs.String("serve", "", "serve live observability HTTP on this address (/metrics, /snapshot, /healthz, /journal, /debug/pprof/); :0 picks a port")
	t.spansPath = fs.String("spans", "", "write a Chrome trace-event JSON worker-span timeline to this file on exit (load at ui.perfetto.dev)")
	t.prof = obs.AddProfileFlags(fs)
	return t
}

// Start begins profiling, opens the journal, enables span tracing, and
// binds the live HTTP endpoint — whichever of them the flags requested.
// On error, everything already started is shut back down.
func (t *Tool) Start() error {
	stop, err := t.prof.Start()
	if err != nil {
		return err
	}
	t.stopProf = stop
	if *t.metricsPath != "" {
		f, err := os.Create(*t.metricsPath)
		if err != nil {
			t.Close() //nolint:errcheck // best-effort unwind, Start's error wins
			return fmt.Errorf("%s: metrics journal: %w", t.name, err)
		}
		t.journalFile = f
		t.journal = obs.NewJournal(f)
	}
	if *t.spansPath != "" {
		obs.DefaultTracer().Reset()
		obs.DefaultTracer().SetEnabled(true)
	}
	if *t.serveAddr != "" {
		if t.journal == nil {
			// No journal file, but the SSE tail should still stream the
			// run's events: journal to nowhere, subscribers still see it.
			t.journal = obs.NewJournal(io.Discard)
		}
		t.server = New(obs.Default(), t.journal)
		addr, err := t.server.Start(*t.serveAddr)
		if err != nil {
			t.server = nil
			t.Close() //nolint:errcheck // best-effort unwind, Start's error wins
			return err
		}
		t.boundAddr = addr
		fmt.Fprintf(os.Stderr, "%s: observability at http://%s/ (metrics, snapshot, healthz, journal, debug/pprof)\n", t.name, addr)
	}
	if t.journal != nil {
		obs.Default().SetEnabled(true)
		// Streaming attacks record convergence points into the default
		// curve set; mirror them into the run journal as attack.converge
		// events (and onto /converge when serving).
		obs.DefaultCurves().SetJournal(t.journal)
	}
	return nil
}

// Observing reports whether a run journal exists (from -metrics or
// -serve); mains use it to decide between Run and RunInstrumented.
func (t *Tool) Observing() bool { return t.journal != nil }

// SpanExport reports whether -spans was requested, i.e. whether Close
// will write a Chrome trace. Mains that can merge a remote process's
// spans (reconstruct -remote) use it to decide whether fetching the
// server's /trace dump is worth a round trip.
func (t *Tool) SpanExport() bool { return *t.spansPath != "" }

// Journal returns the run journal (nil when not observing).
func (t *Tool) Journal() *obs.Journal { return t.journal }

// MetricsPath returns the -metrics path ("" when none was given).
func (t *Tool) MetricsPath() string { return *t.metricsPath }

// Addr returns the bound live-endpoint address ("" when not serving).
func (t *Tool) Addr() string { return t.boundAddr }

// SetPhase updates the phase /healthz reports; no-op when not serving.
func (t *Tool) SetPhase(phase string) {
	if t.server != nil {
		t.server.SetPhase(phase)
	}
}

// Emit writes one event to the run journal (no-op when not observing);
// journal failures are reported to stderr rather than aborting the run.
func (t *Tool) Emit(e obs.Event) {
	if t.journal == nil {
		return
	}
	if err := t.journal.Emit(e); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", t.name, err)
	}
}

// Close shuts down the live endpoint, writes the span timeline, closes the
// journal and flushes the profiles, joining every error — a heap profile
// or trace file that could not be written surfaces here instead of being
// lost. Safe to call more than once.
func (t *Tool) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	var errs []error
	if t.server != nil {
		errs = append(errs, t.server.Close())
		t.server = nil
	}
	if *t.spansPath != "" {
		tr := obs.DefaultTracer()
		tr.SetEnabled(false)
		if f, err := os.Create(*t.spansPath); err != nil {
			errs = append(errs, fmt.Errorf("%s: spans: %w", t.name, err))
		} else {
			werr := tr.WriteChromeTrace(f)
			cerr := f.Close()
			if werr == nil && cerr == nil {
				fmt.Fprintf(os.Stderr, "%s: wrote worker-span timeline to %s (load at ui.perfetto.dev)\n", t.name, *t.spansPath)
			}
			errs = append(errs, werr, cerr)
		}
		tr.Reset()
	}
	if t.journal != nil {
		obs.DefaultCurves().SetJournal(nil)
	}
	if t.journalFile != nil {
		errs = append(errs, t.journalFile.Close())
		t.journalFile = nil
	}
	if t.stopProf != nil {
		errs = append(errs, t.stopProf())
		t.stopProf = nil
	}
	return errors.Join(errs...)
}
