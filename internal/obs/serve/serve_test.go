package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"singlingout/internal/obs"
)

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// parsePrometheus is a strict mini-parser for the text exposition format:
// every line must be a well-formed HELP/TYPE comment or a `name value`
// sample with a valid identifier and a parseable float. It returns the
// samples and fails the test on any malformed line.
func parsePrometheus(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 4 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				t.Fatalf("malformed comment line %q", line)
			}
			if !promNameRe.MatchString(fields[2]) {
				t.Fatalf("invalid metric name in %q", line)
			}
			if fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					t.Fatalf("invalid TYPE in %q", line)
				}
				if _, dup := types[fields[2]]; dup {
					t.Fatalf("duplicate TYPE for %s", fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		// Histogram bucket samples carry an {le="..."} label; the bare
		// name before the brace must still be a valid identifier.
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "\"}") || !strings.Contains(name[i:], "le=\"") {
				t.Fatalf("malformed labeled sample %q", fields[0])
			}
			name = name[:i]
		}
		if !promNameRe.MatchString(name) {
			t.Fatalf("invalid sample name %q", fields[0])
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if _, dup := samples[fields[0]]; dup {
			t.Fatalf("duplicate sample %q", fields[0])
		}
		samples[fields[0]] = v
	}
	return samples
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"census.workers":   "census_workers",
		"query.latency_ns": "query_latency_ns",
		"par.items":        "par_items",
		"9lives":           "_9lives",
		"ok_name":          "ok_name",
		"":                 "_",
		"a-b c":            "a_b_c",
	} {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMetricsEndpointPrometheusFormat(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("query.count").Add(12345)
	reg.Gauge("census.workers").Set(8)
	reg.Gauge("census.exact_fraction").Set(0.8125)
	for _, v := range []int64{10, 20, 30} {
		reg.Histogram("par.item_ns").Observe(v)
	}

	srv := httptest.NewServer(New(reg, nil).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}

	samples := parsePrometheus(t, string(body))
	want := map[string]float64{
		"query_count":           12345,
		"census_workers":        8,
		"census_exact_fraction": 0.8125,
		"par_item_ns_count":     3,
		"par_item_ns_sum":       60,
		"par_item_ns_min":       10,
		"par_item_ns_max":       30,
		"par_item_ns_mean":      20,
		// Cumulative base-2 buckets: 10 is in [8,15], 20 and 30 in [16,31].
		`par_item_ns_bucket{le="15"}`:   1,
		`par_item_ns_bucket{le="31"}`:   3,
		`par_item_ns_bucket{le="+Inf"}`: 3,
	}
	for name, v := range want {
		if samples[name] != v {
			t.Errorf("sample %s = %v, want %v", name, samples[name], v)
		}
	}
	// Sample lines must carry only sanitized identifiers (the original
	// dotted name may appear in HELP text); parsePrometheus enforces this,
	// so just pin that no dotted name leaked as a sample.
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "census.") || strings.HasPrefix(line, "query.") || strings.HasPrefix(line, "par.") {
			t.Errorf("dotted metric name leaked into sample line %q", line)
		}
	}
}

func TestSnapshotAndHealthzEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	reg.Counter("lp.pivots").Add(77)
	journal := obs.NewJournal(io.Discard)
	journal.Emit(obs.Event{Phase: "run_start", Seed: 9}) //nolint:errcheck

	s := New(reg, journal)
	s.SetPhase("E02")
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Counters["lp.pivots"] != 77 {
		t.Errorf("snapshot = %+v", snap)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Phase != "E02" || h.UptimeSeconds < 0 || h.JournalEvents != 1 {
		t.Errorf("healthz = %+v", h)
	}
}

// readSSEEvents reads SSE frames off the stream until n journal events
// arrived or the deadline passes.
func readSSEEvents(t *testing.T, body io.Reader, n int) []obs.Event {
	t.Helper()
	var out []obs.Event
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("SSE data is not an Event: %v (%q)", err, line)
		}
		out = append(out, e)
		if len(out) == n {
			return out
		}
	}
	t.Fatalf("SSE stream ended after %d of %d events: %v", len(out), n, sc.Err())
	return nil
}

func TestJournalSSETail(t *testing.T) {
	reg := obs.NewRegistry()
	journal := obs.NewJournal(io.Discard)
	journal.Emit(obs.Event{Phase: "run_start", Seed: 4}) //nolint:errcheck

	s := New(reg, journal)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer s.Close() //nolint:errcheck

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/journal", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// Emit live events after the stream is connected.
	go func() {
		for i := 0; i < 3; i++ {
			journal.Emit(obs.Event{Phase: "experiment", ID: fmt.Sprintf("E%02d", i)}) //nolint:errcheck
			time.Sleep(5 * time.Millisecond)
		}
	}()

	events := readSSEEvents(t, resp.Body, 4)
	if events[0].Phase != "run_start" || events[0].Seed != 4 {
		t.Errorf("replay event = %+v", events[0])
	}
	for i, e := range events[1:] {
		if e.Phase != "experiment" || e.ID != fmt.Sprintf("E%02d", i) {
			t.Errorf("live event %d = %+v", i, e)
		}
	}
}

// readSSECurves reads SSE frames off a /converge stream until n curve
// samples arrived or the deadline passes.
func readSSECurves(t *testing.T, body io.Reader, n int) []obs.CurveSample {
	t.Helper()
	var out []obs.CurveSample
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var s obs.CurveSample
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &s); err != nil {
			t.Fatalf("SSE data is not a CurveSample: %v (%q)", err, line)
		}
		out = append(out, s)
		if len(out) == n {
			return out
		}
	}
	t.Fatalf("SSE stream ended after %d of %d samples: %v", len(out), n, sc.Err())
	return nil
}

func TestConvergeJSONSnapshot(t *testing.T) {
	cs := obs.NewCurveSet()
	cs.Curve("recon.lp.accuracy").Add(32, 0.6)
	cs.Curve("recon.lp.accuracy").Add(64, 0.9)
	cs.Curve("census.exact_fraction").Add(26, 0.25)

	s := New(obs.NewRegistry(), nil)
	s.SetCurves(cs)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/converge")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var snap convergeSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	lp := snap.Curves["recon.lp.accuracy"]
	if len(lp) != 2 || lp[1].X != 64 || lp[1].Y != 0.9 {
		t.Errorf("lp curve = %+v", lp)
	}
	if got := snap.Curves["census.exact_fraction"]; len(got) != 1 || got[0].X != 26 {
		t.Errorf("census curve = %+v", got)
	}
	if snap.Dropped != 0 {
		t.Errorf("dropped = %d", snap.Dropped)
	}
}

func TestConvergeSSETail(t *testing.T) {
	cs := obs.NewCurveSet()
	curve := cs.Curve("recon.lp.accuracy")
	curve.Add(16, 0.5)

	s := New(obs.NewRegistry(), nil)
	s.SetCurves(cs)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer s.Close() //nolint:errcheck

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/converge", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// Add live points after the stream is connected.
	go func() {
		for i := int64(1); i <= 3; i++ {
			curve.AddStats(16+16*i, 0.5+0.1*float64(i), map[string]int64{"chunk": 16})
			time.Sleep(5 * time.Millisecond)
		}
	}()

	samples := readSSECurves(t, resp.Body, 4)
	if samples[0].Name != "recon.lp.accuracy" || samples[0].X != 16 || samples[0].Y != 0.5 {
		t.Errorf("replay sample = %+v", samples[0])
	}
	for i, smp := range samples[1:] {
		wantX := int64(32 + 16*i)
		if smp.X != wantX || smp.Stats["chunk"] != 16 {
			t.Errorf("live sample %d = %+v, want x=%d", i, smp, wantX)
		}
	}
	// The tail must be monotone in x per curve — the invariant plotters
	// rely on.
	for i := 1; i < len(samples); i++ {
		if samples[i].X <= samples[i-1].X {
			t.Errorf("curve tail not monotone: x[%d]=%d after x=%d", i, samples[i].X, samples[i-1].X)
		}
	}
}

func TestHealthzReportsJournalDropped(t *testing.T) {
	journal := obs.NewJournal(io.Discard)
	_, _, cancel := journal.Subscribe(1)
	defer cancel()
	for i := 0; i < 4; i++ {
		journal.Emit(obs.Event{Phase: "experiment", ID: "flood"}) //nolint:errcheck
	}

	s := New(obs.NewRegistry(), journal)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.JournalEvents != 4 || h.JournalDropped != 3 {
		t.Errorf("healthz = %+v, want 4 events with 3 dropped", h)
	}
}

func TestJournalEndpointWithoutJournal(t *testing.T) {
	srv := httptest.NewServer(New(obs.NewRegistry(), nil).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/journal")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestPprofEndpoint(t *testing.T) {
	srv := httptest.NewServer(New(obs.NewRegistry(), nil).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "heap profile") {
		t.Errorf("pprof heap endpoint: status %d, body %.80q", resp.StatusCode, body)
	}
}

// TestConcurrentScrapeDuringRun is the -race acceptance test: endpoints
// are scraped continuously while a simulated run hammers the registry,
// the journal, and the default tracer from many goroutines.
func TestConcurrentScrapeDuringRun(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	journal := obs.NewJournal(io.Discard)
	s := New(reg, journal)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				reg.Counter("query.count").Add(1)
				reg.Gauge("census.workers").Set(float64(w))
				reg.Histogram("query.latency_ns").Observe(int64(i % 1000))
				if i%50 == 0 {
					journal.Emit(obs.Event{Phase: "experiment", ID: "E01", Seed: int64(i)}) //nolint:errcheck
					s.SetPhase(fmt.Sprintf("worker%d", w))
					// Yield so the scrape goroutines get CPU time even on a
					// single-core host.
					runtime.Gosched()
				}
			}
		}(w)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 10; i++ {
		for _, path := range []string{"/metrics", "/snapshot", "/healthz"} {
			resp, err := client.Get("http://" + addr + path)
			if err != nil {
				t.Fatalf("scrape %s: %v", path, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("scrape %s: status %d", path, resp.StatusCode)
			}
			if path == "/metrics" {
				parsePrometheus(t, string(body))
			}
		}
	}
	close(stop)
	wg.Wait()
}
