package obs

import (
	"bytes"
	"reflect"
	"testing"
)

// TestDeltaDropsUnchangedGauge: a gauge re-set to the same value between
// snapshots carries no information and must be dropped from the delta
// (only counters moving or gauges changing survive).
func TestDeltaDropsUnchangedGauge(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Gauge("stable").Set(3.5)
	r.Gauge("moving").Set(1)
	before := r.Snapshot()

	r.Gauge("stable").Set(3.5) // same value again
	r.Gauge("moving").Set(2)
	r.Counter("work").Add(1) // keep the delta non-empty overall
	d := r.Snapshot().Delta(before)

	if _, ok := d.Gauges["stable"]; ok {
		t.Error("unchanged gauge must be dropped from the delta")
	}
	if d.Gauges["moving"] != 2 {
		t.Errorf("moving gauge = %v, want 2", d.Gauges["moving"])
	}
}

// TestDeltaZeroPrev: against the zero Snapshot, Delta keeps every non-zero
// metric verbatim and drops zero-valued ones.
func TestDeltaZeroPrev(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("hit").Add(7)
	r.Counter("zero") // registered but never incremented
	r.Gauge("g").Set(0.5)
	r.Gauge("gzero").Set(0) // indistinguishable from never-set
	r.Histogram("h").Observe(3)
	r.Histogram("hempty") // registered, no observations

	d := r.Snapshot().Delta(Snapshot{})
	if d.Counters["hit"] != 7 {
		t.Errorf("counter = %d, want 7", d.Counters["hit"])
	}
	if _, ok := d.Counters["zero"]; ok {
		t.Error("zero counter must be dropped against a zero prev")
	}
	if d.Gauges["g"] != 0.5 {
		t.Errorf("gauge = %v, want 0.5", d.Gauges["g"])
	}
	if _, ok := d.Gauges["gzero"]; ok {
		t.Error("zero-valued gauge is indistinguishable from unset and must be dropped")
	}
	if h := d.Histograms["h"]; h.Count != 1 || h.Sum != 3 || h.Mean != 3 {
		t.Errorf("histogram = %+v", h)
	}
	if _, ok := d.Histograms["hempty"]; ok {
		t.Error("observation-free histogram must be dropped")
	}
}

// TestDeltaHistogramMinMaxNotInvertible pins the documented semantics:
// histogram min/max cannot be subtracted, so a delta's Min/Max cover the
// whole run up to the later snapshot — here the pre-snapshot observation
// 100 still dominates the delta's Max even though only 5 was observed
// inside the delta window.
func TestDeltaHistogramMinMaxNotInvertible(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("lat")
	h.Observe(100)
	before := r.Snapshot()

	h.Observe(5)
	d := r.Snapshot().Delta(before)
	dh := d.Histograms["lat"]
	if dh.Count != 1 || dh.Sum != 5 || dh.Mean != 5 {
		t.Errorf("delta count/sum/mean = %+v", dh)
	}
	if dh.Min != 5 || dh.Max != 100 {
		t.Errorf("delta min/max = %d/%d, want run-wide 5/100 (min/max are not invertible)", dh.Min, dh.Max)
	}
}

// TestJournalSnapshotRoundTrip: snapshots attached to journal events must
// survive the JSONL encode/decode byte-exactly — ReadEvents reproduces the
// emitted metrics maps field for field.
func TestJournalSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("query.count").Add(12345)
	r.Counter("lp.pivots").Add(987)
	r.Gauge("census.exact_fraction").Set(0.8125) // exactly representable
	r.Gauge("par.workers").Set(8)
	for _, v := range []int64{1, 2, 4, 1000} {
		r.Histogram("query.latency_ns").Observe(v)
	}
	snaps := []Snapshot{
		r.Snapshot(),
		r.Snapshot().Delta(Snapshot{}),
	}

	var buf bytes.Buffer
	j := NewJournal(&buf)
	for i, s := range snaps {
		s := s
		if err := j.Emit(Event{Phase: "experiment", ID: "E02", Seed: int64(i), Metrics: &s}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(snaps) {
		t.Fatalf("read %d events, want %d", len(got), len(snaps))
	}
	for i, e := range got {
		if e.Metrics == nil {
			t.Fatalf("event %d lost its metrics", i)
		}
		if !reflect.DeepEqual(*e.Metrics, snaps[i]) {
			t.Errorf("event %d snapshot mangled:\n got  %+v\n want %+v", i, *e.Metrics, snaps[i])
		}
	}
}
