package obs

import (
	"path/filepath"
	"strings"
	"testing"
)

func benchPair() (BenchSummary, BenchSummary) {
	base := BenchSummary{
		Rev: "aaaaaaaaaaaa", Seed: 1, Quick: true, TotalSeconds: 3.0,
		Experiments: []BenchEntry{
			{ID: "E01", Seconds: 1.0, Counters: map[string]int64{"query.count": 1000, "sat.conflicts": 5}},
			{ID: "E02", Seconds: 1.5, Counters: map[string]int64{"lp.pivots": 900}},
			{ID: "E11", Seconds: 0.5},
			{ID: "BENCH.census.workers=8", Seconds: 0.2},
			{ID: "E90", Seconds: 0.01},
		},
	}
	cur := BenchSummary{
		Rev: "bbbbbbbbbbbb", Seed: 1, Quick: true, TotalSeconds: 3.9,
		Experiments: []BenchEntry{
			{ID: "E01", Seconds: 1.0, Counters: map[string]int64{"query.count": 1000, "sat.conflicts": 5}},
			{ID: "E02", Seconds: 2.4, Counters: map[string]int64{"lp.pivots": 1800}}, // +60% regression
			{ID: "E11", Seconds: 0.5, Error: "boom"},
			{ID: "BENCH.census.workers=16", Seconds: 0.1}, // probe renamed on a bigger host
			{ID: "E90", Seconds: 0.02},                    // +100% but under the seconds floor
		},
	}
	return base, cur
}

func TestMissingFromNew(t *testing.T) {
	base, cur := benchPair()
	base.Experiments = append(base.Experiments,
		BenchEntry{ID: "BENCH.remote.batch=1", Seconds: 0.1},
		BenchEntry{ID: "BENCH.remote.batch=256", Seconds: 0.02},
	)
	cur.Experiments = append(cur.Experiments,
		BenchEntry{ID: "BENCH.remote.batch=1", Seconds: 0.1},
		// batch=256 silently dropped from the new run
	)
	diff := DiffBench(base, cur)
	missing := diff.MissingFromNew([]string{"BENCH.remote."})
	if len(missing) != 1 || !strings.Contains(missing[0], "BENCH.remote.batch=256") {
		t.Errorf("missing = %v, want exactly the dropped batch=256 row", missing)
	}
	// The renamed census probe is not required, so it is not a violation —
	// and no prefixes means nothing ever is.
	if got := diff.MissingFromNew([]string{"BENCH.nonesuch."}); len(got) != 0 {
		t.Errorf("unrelated prefix produced %v", got)
	}
	if got := diff.MissingFromNew(nil); len(got) != 0 {
		t.Errorf("nil prefixes produced %v", got)
	}
	// Regressions still ignores missing rows (that is the gap -require
	// closes), so the two checks compose rather than overlap.
	for _, v := range diff.Regressions(1000, 0) {
		if strings.Contains(v, "BENCH.remote.batch=256") {
			t.Errorf("Regressions should not report missing rows: %v", v)
		}
	}
}

func TestDiffBenchRows(t *testing.T) {
	base, cur := benchPair()
	diff := DiffBench(base, cur)
	byID := map[string]BenchDelta{}
	for _, d := range diff.Rows {
		byID[d.ID] = d
	}
	if len(diff.Rows) != 6 { // 5 base rows + 1 new-only probe row
		t.Fatalf("rows = %d, want 6", len(diff.Rows))
	}
	if d := byID["E01"]; !d.InBase || !d.InNew || d.SecondsPct() != 0 || len(d.Counters) != 0 {
		t.Errorf("unchanged E01 delta = %+v", d)
	}
	d := byID["E02"]
	if got := d.SecondsPct(); got < 59.9 || got > 60.1 {
		t.Errorf("E02 pct = %v, want ~60", got)
	}
	if len(d.Counters) != 1 || d.Counters[0] != (CounterDelta{Name: "lp.pivots", Base: 900, New: 1800}) {
		t.Errorf("E02 counters = %+v", d.Counters)
	}
	if d := byID["BENCH.census.workers=8"]; !d.InBase || d.InNew {
		t.Errorf("renamed probe base row = %+v", d)
	}
	if d := byID["BENCH.census.workers=16"]; d.InBase || !d.InNew {
		t.Errorf("renamed probe new row = %+v", d)
	}
}

func TestBenchDiffFprint(t *testing.T) {
	base, cur := benchPair()
	var b strings.Builder
	if err := DiffBench(base, cur).Fprint(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"aaaaaaaaaaaa", "bbbbbbbbbbbb",
		"E02", "+60.0%",
		"lp.pivots", "900 -> 1800",
		"TOTAL", "+30.0%",
		"gone", "new",
		`new err="boom"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("delta table missing %q:\n%s", want, out)
		}
	}
}

// TestBenchDiffGate pins the regression gate: an injected +60% wall-clock
// regression and a new error both trip it; renamed probe rows, sub-floor
// experiments and unchanged experiments do not.
func TestBenchDiffGate(t *testing.T) {
	base, cur := benchPair()
	diff := DiffBench(base, cur)

	violations := diff.Regressions(50, 0.05)
	if len(violations) != 2 {
		t.Fatalf("violations = %v, want 2 (E02 regression + E11 error)", violations)
	}
	joined := strings.Join(violations, "\n")
	if !strings.Contains(joined, "E02") || !strings.Contains(joined, "exceeds +50.0%") {
		t.Errorf("E02 regression not reported: %v", violations)
	}
	if !strings.Contains(joined, "E11") || !strings.Contains(joined, "boom") {
		t.Errorf("E11 error not reported: %v", violations)
	}
	for _, banned := range []string{"E90", "BENCH.census"} {
		if strings.Contains(joined, banned) {
			t.Errorf("%s must not trip the gate: %v", banned, violations)
		}
	}

	// A permissive threshold only reports the error regression.
	if v := diff.Regressions(100, 0.05); len(v) != 1 || !strings.Contains(v[0], "E11") {
		t.Errorf("gate at 100%% = %v, want only the E11 error", v)
	}
	// Raising the floor above E02's baseline silences its regression too.
	if v := diff.Regressions(50, 2.0); len(v) != 1 {
		t.Errorf("gate with 2s floor = %v, want only the E11 error", v)
	}
}

func TestReadBenchFileRoundTrip(t *testing.T) {
	base, _ := benchPair()
	dir := t.TempDir()
	path, err := base.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rev != base.Rev || len(got.Experiments) != len(base.Experiments) {
		t.Errorf("round trip mangled summary: %+v", got)
	}
	if got.Experiments[0].Counters["query.count"] != 1000 {
		t.Errorf("counters lost: %+v", got.Experiments[0])
	}
	if _, err := ReadBenchFile(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing file must error")
	}
}

func TestConvergeRowsGateOnQueries(t *testing.T) {
	row := func(q int64, seconds float64) BenchEntry {
		return BenchEntry{ID: "BENCH.converge.q90", Seconds: seconds,
			Counters: map[string]int64{ConvergeCounter: q}}
	}
	base := BenchSummary{Rev: "aaaaaaaaaaaa", Experiments: []BenchEntry{row(80, 0.1)}}

	// More queries to the same accuracy is a regression, regardless of the
	// seconds floor (converge rows are deterministic counters, not noisy
	// wall clock — minSeconds must not shield them).
	cur := BenchSummary{Rev: "bbbbbbbbbbbb", Experiments: []BenchEntry{row(112, 0.1)}}
	got := DiffBench(base, cur).Regressions(10, 1.0)
	if len(got) != 1 || !strings.Contains(got[0], "lower is better") || !strings.Contains(got[0], "80 -> 112") {
		t.Errorf("query growth: %v, want one lower-is-better violation", got)
	}

	// Fewer (or equal) queries is an improvement, never a violation — even
	// when the probe's wall clock explodes (it is microseconds of noise).
	for _, q := range []int64{48, 80} {
		cur = BenchSummary{Rev: "bbbbbbbbbbbb", Experiments: []BenchEntry{row(q, 50.0)}}
		if got := DiffBench(base, cur).Regressions(10, 0); len(got) != 0 {
			t.Errorf("queries %d: %v, want none (wall clock must be ignored)", q, got)
		}
	}

	// A converge row that lost its counter cannot be gated — that is a
	// violation in itself, not a silent pass.
	cur = BenchSummary{Rev: "bbbbbbbbbbbb", Experiments: []BenchEntry{{ID: "BENCH.converge.q90", Seconds: 0.1}}}
	got = DiffBench(base, cur).Regressions(10, 0)
	if len(got) != 1 || !strings.Contains(got[0], "counter missing") {
		t.Errorf("missing counter: %v, want one violation", got)
	}

	// A baseline row without the counter has nothing to gate on.
	base = BenchSummary{Rev: "aaaaaaaaaaaa", Experiments: []BenchEntry{{ID: "BENCH.converge.q90", Seconds: 0.1}}}
	cur = BenchSummary{Rev: "bbbbbbbbbbbb", Experiments: []BenchEntry{row(999, 0.1)}}
	if got := DiffBench(base, cur).Regressions(10, 0); len(got) != 0 {
		t.Errorf("counterless baseline: %v, want none", got)
	}

	// Non-converge rows keep the wall-clock gate untouched.
	base = BenchSummary{Rev: "aaaaaaaaaaaa", Experiments: []BenchEntry{{ID: "E02", Seconds: 1.0}}}
	cur = BenchSummary{Rev: "bbbbbbbbbbbb", Experiments: []BenchEntry{{ID: "E02", Seconds: 2.0}}}
	if got := DiffBench(base, cur).Regressions(10, 0); len(got) != 1 {
		t.Errorf("wall-clock regression: %v, want one violation", got)
	}
}
