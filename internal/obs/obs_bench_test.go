package obs

import "testing"

// The disabled path is the one compiled into every pipeline permanently;
// the acceptance bar is a single atomic load and no allocation.

func BenchmarkCounterDisabled(b *testing.B) {
	c := NewRegistry().Counter("bench.count")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("bench.count")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	h := NewRegistry().Histogram("bench.lat_ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("bench.lat_ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	h := NewRegistry().Histogram("bench.span_ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Span().End()
	}
}

func BenchmarkRegistryLookup(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("bench.lookup").Add(1)
	}
}
