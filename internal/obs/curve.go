package obs

import (
	"fmt"
	"sync"
)

// CurvePoint is one sample of a convergence curve: X is the resource the
// attack has consumed so far (queries answered, table cells ingested) and
// Y the metric it has achieved (reconstruction accuracy, exact-match
// fraction). Stats optionally carries the solver cost behind the point
// (SAT decisions/restarts, LP pivots), so a curve consumer can plot
// accuracy against work as well as against queries.
type CurvePoint struct {
	X     int64            `json:"x"`
	Y     float64          `json:"y"`
	Stats map[string]int64 `json:"stats,omitempty"`
}

// CurveSample is one curve point tagged with its curve name — the unit
// fanned out to live subscribers, embedded in attack.converge journal
// events, and streamed over the serve package's SSE /converge endpoint.
type CurveSample struct {
	Name string `json:"curve"`
	CurvePoint
}

// curveRing is how many recent samples a CurveSet retains for subscriber
// replay (the SSE /converge tail). Full per-curve series are retained
// separately and served by the JSON /converge snapshot.
const curveRing = 4096

// mCurveDropped counts samples dropped for slow curve subscribers, the
// sibling of obs.journal_dropped: an SSE consumer comparing its received
// sample count against this counter can detect gaps in a tailed curve.
var mCurveDropped = Default().Counter("obs.curve_dropped")

// CurveSet is a registry of named convergence curves. Attacks append
// monotone (x, y) points while they run; the set retains the full series
// per curve, fans samples out to live subscribers without ever blocking
// the attack, and — when attached — mirrors every point into a run
// journal as an attack.converge event and into a Tracer as a Chrome
// counter event (a Perfetto counter lane climbing next to the span
// timeline). Safe for concurrent use.
type CurveSet struct {
	mu      sync.Mutex
	order   []string
	curves  map[string][]CurvePoint
	recent  []CurveSample
	subs    map[int]chan CurveSample
	nextID  int
	dropped int64
	journal *Journal
	tracer  *Tracer
}

// NewCurveSet returns an empty curve set with no journal or tracer
// attached.
func NewCurveSet() *CurveSet {
	return &CurveSet{curves: map[string][]CurvePoint{}}
}

var defaultCurves = func() *CurveSet {
	cs := NewCurveSet()
	cs.SetTracer(defaultTracer)
	return cs
}()

// DefaultCurves returns the process-wide curve set the streaming attack
// harnesses record into and the serve package's /converge endpoint reads.
// Its points land on the default tracer as counter events whenever span
// collection is enabled; cmd tools attach their run journal via
// SetJournal.
func DefaultCurves() *CurveSet { return defaultCurves }

// SetJournal attaches (or with nil detaches) a run journal: every sample
// added after this call is also emitted as an attack.converge journal
// event carrying the sample under Event.Curve.
func (cs *CurveSet) SetJournal(j *Journal) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.journal = j
}

// SetTracer attaches (or with nil detaches) a tracer: every sample added
// after this call is also recorded as a Chrome trace counter event when
// the tracer is enabled.
func (cs *CurveSet) SetTracer(t *Tracer) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.tracer = t
}

// Curve returns the named curve, creating it if needed. Names follow the
// metric-name convention (lowercase dotted, e.g. "recon.lp.accuracy");
// repolint's obsnames analyzer holds Curve call sites to it.
func (cs *CurveSet) Curve(name string) *Curve {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if _, ok := cs.curves[name]; !ok {
		cs.curves[name] = nil
		cs.order = append(cs.order, name)
	}
	return &Curve{set: cs, name: name}
}

// Names returns the curve names in creation order.
func (cs *CurveSet) Names() []string {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return append([]string(nil), cs.order...)
}

// Snapshot returns a copy of every curve's full point series.
func (cs *CurveSet) Snapshot() map[string][]CurvePoint {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make(map[string][]CurvePoint, len(cs.curves))
	for name, pts := range cs.curves {
		out[name] = append([]CurvePoint(nil), pts...)
	}
	return out
}

// Dropped returns the number of samples dropped for slow subscribers.
func (cs *CurveSet) Dropped() int64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.dropped
}

// Reset discards every curve, retained sample, and drop count. Live
// subscribers stay registered; journal and tracer attachments survive.
func (cs *CurveSet) Reset() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.order = nil
	cs.curves = map[string][]CurvePoint{}
	cs.recent = nil
	cs.dropped = 0
}

// Subscribe registers a live tail over every curve in the set: it returns
// the retained recent samples (replay) and a channel carrying every
// sample added from now on, with no gap or overlap between the two. The
// channel buffers buf samples; when the subscriber falls behind, newer
// samples are dropped for it (counted in Dropped and the
// obs.curve_dropped metric) rather than blocking the attack. cancel
// unregisters the subscriber and closes the channel.
func (cs *CurveSet) Subscribe(buf int) (replay []CurveSample, ch <-chan CurveSample, cancel func()) {
	if buf < 1 {
		buf = 1
	}
	c := make(chan CurveSample, buf)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	replay = append(replay, cs.recent...)
	if cs.subs == nil {
		cs.subs = map[int]chan CurveSample{}
	}
	id := cs.nextID
	cs.nextID++
	cs.subs[id] = c
	var once sync.Once
	cancel = func() {
		once.Do(func() {
			cs.mu.Lock()
			delete(cs.subs, id)
			cs.mu.Unlock()
			close(c)
		})
	}
	return replay, c, cancel
}

// Curve is one named convergence series of its CurveSet. The zero Curve
// is not usable; obtain curves from a CurveSet.
type Curve struct {
	set  *CurveSet
	name string
}

// Name returns the curve's name.
func (c *Curve) Name() string { return c.name }

// Add appends one (x, y) point. X must be strictly increasing along the
// curve — the series is indexed by resource spent, which only grows —
// and Add panics on a violation, since an out-of-order point is a
// harness bug that would silently corrupt every downstream consumer.
func (c *Curve) Add(x int64, y float64) { c.AddStats(x, y, nil) }

// AddStats is Add with a solver-cost annotation (e.g. SAT
// decisions/restarts at this point); stats may be nil and is retained by
// reference, so callers must not mutate it afterwards.
func (c *Curve) AddStats(x int64, y float64, stats map[string]int64) {
	sample := CurveSample{Name: c.name, CurvePoint: CurvePoint{X: x, Y: y, Stats: stats}}
	cs := c.set
	cs.mu.Lock()
	pts := cs.curves[c.name]
	if n := len(pts); n > 0 && x <= pts[n-1].X {
		last := pts[n-1].X
		cs.mu.Unlock()
		panic(fmt.Sprintf("obs: curve %q x=%d is not after x=%d (points must be strictly increasing in x)", c.name, x, last))
	}
	cs.curves[c.name] = append(pts, sample.CurvePoint)
	cs.recent = append(cs.recent, sample)
	if len(cs.recent) > curveRing {
		cs.recent = cs.recent[len(cs.recent)-curveRing:]
	}
	for _, ch := range cs.subs {
		select {
		case ch <- sample:
		default:
			cs.dropped++
			mCurveDropped.Add(1)
		}
	}
	journal, tracer := cs.journal, cs.tracer
	cs.mu.Unlock()

	// Mirror outside the lock: neither sink calls back into the set. A
	// journal write failure must not abort the attack, so it is dropped.
	if journal != nil {
		_ = journal.Emit(Event{Phase: "attack.converge", ID: c.name, Curve: &sample})
	}
	if tracer != nil {
		tracer.Counter(c.name, y)
	}
}

// Len returns the number of points on the curve.
func (c *Curve) Len() int {
	c.set.mu.Lock()
	defer c.set.mu.Unlock()
	return len(c.set.curves[c.name])
}

// Points returns a copy of the curve's series.
func (c *Curve) Points() []CurvePoint {
	c.set.mu.Lock()
	defer c.set.mu.Unlock()
	return append([]CurvePoint(nil), c.set.curves[c.name]...)
}
