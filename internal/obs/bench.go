package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// BenchEntry is the machine-readable per-experiment record of a benchmark
// summary: wall-clock plus the work counters that back the paper's
// complexity claims (oracle queries, simplex pivots, SAT conflicts...).
type BenchEntry struct {
	ID       string           `json:"id"`
	Seconds  float64          `json:"seconds"`
	Error    string           `json:"error,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// BenchSummary is the content of a BENCH_<rev>.json file — one point of
// the repository's performance trajectory.
type BenchSummary struct {
	Rev          string       `json:"rev"`
	Time         string       `json:"time"`
	Seed         int64        `json:"seed"`
	Quick        bool         `json:"quick"`
	TotalSeconds float64      `json:"total_seconds"`
	Experiments  []BenchEntry `json:"experiments"`
}

// SummarizeEvents folds journal experiment events into a BenchSummary.
func SummarizeEvents(rev string, events []Event) BenchSummary {
	sum := BenchSummary{Rev: rev}
	for _, e := range events {
		switch e.Phase {
		case "run_start":
			sum.Seed, sum.Quick, sum.Time = e.Seed, e.Quick, e.Time
		case "experiment":
			entry := BenchEntry{ID: e.ID, Seconds: e.Seconds, Error: e.Error}
			if e.Metrics != nil && len(e.Metrics.Counters) > 0 {
				entry.Counters = e.Metrics.Counters
			}
			sum.Experiments = append(sum.Experiments, entry)
			sum.TotalSeconds += e.Seconds
		}
	}
	return sum
}

// WriteFile writes the summary as BENCH_<rev>.json in dir and returns the
// path. Characters hostile to filenames in rev are replaced.
func (b BenchSummary) WriteFile(dir string) (string, error) {
	rev := b.Rev
	if rev == "" {
		rev = "unknown"
	}
	rev = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, rev)
	path := filepath.Join(dir, "BENCH_"+rev+".json")
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", fmt.Errorf("obs: bench summary marshal: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("obs: bench summary write: %w", err)
	}
	return path, nil
}

// GitRev resolves the current commit hash (short, 12 hex chars) by walking
// up from start looking for a .git directory and reading HEAD, loose refs
// and packed-refs directly — no git binary required. It returns "unknown"
// when no revision can be resolved.
func GitRev(start string) string {
	dir, err := filepath.Abs(start)
	if err != nil {
		return "unknown"
	}
	for {
		gitDir := filepath.Join(dir, ".git")
		if fi, err := os.Stat(gitDir); err == nil && fi.IsDir() {
			if rev := resolveHead(gitDir); rev != "" {
				return rev
			}
			return "unknown"
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "unknown"
		}
		dir = parent
	}
}

func resolveHead(gitDir string) string {
	head, err := os.ReadFile(filepath.Join(gitDir, "HEAD"))
	if err != nil {
		return ""
	}
	line := strings.TrimSpace(string(head))
	if !strings.HasPrefix(line, "ref: ") {
		return shortHash(line)
	}
	ref := strings.TrimSpace(strings.TrimPrefix(line, "ref: "))
	if data, err := os.ReadFile(filepath.Join(gitDir, filepath.FromSlash(ref))); err == nil {
		return shortHash(strings.TrimSpace(string(data)))
	}
	// Loose ref missing: look in packed-refs.
	packed, err := os.ReadFile(filepath.Join(gitDir, "packed-refs"))
	if err != nil {
		return ""
	}
	for _, l := range strings.Split(string(packed), "\n") {
		fields := strings.Fields(l)
		if len(fields) == 2 && fields[1] == ref {
			return shortHash(fields[0])
		}
	}
	return ""
}

func shortHash(h string) string {
	if len(h) < 12 {
		return ""
	}
	for _, r := range h {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f') {
			return ""
		}
	}
	return h[:12]
}
