package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.count")
	g := r.Gauge("x.rate")

	// Disabled registry: no-ops.
	c.Add(5)
	g.Set(1.5)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("disabled registry recorded: counter=%d gauge=%v", c.Value(), g.Value())
	}

	r.SetEnabled(true)
	c.Add(5)
	c.Add(2)
	g.Set(1.5)
	if c.Value() != 7 {
		t.Errorf("counter = %d, want 7", c.Value())
	}
	if g.Value() != 1.5 {
		t.Errorf("gauge = %v, want 1.5", g.Value())
	}
	if got := r.Counter("x.count"); got != c {
		t.Error("Counter must be get-or-create, got a fresh instance")
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("lat")
	for _, v := range []int64{1, 2, 3, 10, -4} { // -4 clamps to 0
		h.Observe(v)
	}
	s := h.Stat()
	if s.Count != 5 || s.Sum != 16 || s.Min != 0 || s.Max != 10 {
		t.Errorf("stat = %+v", s)
	}
	if s.Mean != 16.0/5 {
		t.Errorf("mean = %v", s.Mean)
	}
	r.Reset()
	if s := h.Stat(); s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Errorf("after reset: %+v", s)
	}
	h.Observe(9)
	if s := h.Stat(); s.Min != 9 || s.Max != 9 {
		t.Errorf("min/max after reset+observe: %+v", s)
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	r := NewRegistry()

	// Disabled: zero span, no observation.
	if d := r.StartSpan("op_ns").End(); d != 0 {
		t.Errorf("disabled span recorded %d", d)
	}

	r.SetEnabled(true)
	sp := r.StartSpan("op_ns")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Errorf("span duration = %d", d)
	}
	if s := r.Histogram("op_ns").Stat(); s.Count != 1 || s.Sum <= 0 {
		t.Errorf("span histogram = %+v", s)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc.count")
			h := r.Histogram("conc.size")
			for j := 0; j < per; j++ {
				c.Add(1)
				h.Observe(int64(j % 7))
				r.Gauge("conc.last").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc.count").Value(); got != goroutines*per {
		t.Errorf("counter = %d, want %d", got, goroutines*per)
	}
	if got := r.Histogram("conc.size").Count(); got != goroutines*per {
		t.Errorf("histogram count = %d, want %d", got, goroutines*per)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("a").Add(10)
	r.Counter("b").Add(1)
	r.Histogram("h").Observe(4)
	before := r.Snapshot()

	r.Counter("a").Add(5)
	r.Gauge("g").Set(0.25)
	r.Histogram("h").Observe(6)
	r.Histogram("h").Observe(2)
	d := r.Snapshot().Delta(before)

	if d.Counters["a"] != 5 {
		t.Errorf("delta a = %d, want 5", d.Counters["a"])
	}
	if _, ok := d.Counters["b"]; ok {
		t.Error("unchanged counter b must be dropped from the delta")
	}
	if d.Gauges["g"] != 0.25 {
		t.Errorf("gauge g = %v", d.Gauges["g"])
	}
	h := d.Histograms["h"]
	if h.Count != 2 || h.Sum != 8 || h.Mean != 4 {
		t.Errorf("hist delta = %+v", h)
	}
	if d.Empty() {
		t.Error("delta should not be empty")
	}
	if !r.Snapshot().Delta(r.Snapshot()).Empty() {
		t.Error("self-delta should be empty")
	}
}

func TestSnapshotFlat(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("z.count").Add(3)
	r.Counter("a.count").Add(1)
	r.Histogram("m.lat_ns").Observe(10)
	flat := r.Snapshot().Flat()
	if len(flat) != 6 { // two counters + hist .count/.mean/.p50/.p99
		t.Fatalf("flat = %+v", flat)
	}
	for i := 1; i < len(flat); i++ {
		if flat[i-1].Name >= flat[i].Name {
			t.Errorf("flat not sorted: %q before %q", flat[i-1].Name, flat[i].Name)
		}
	}
	if flat[0].Name != "a.count" || flat[0].Value != 1 {
		t.Errorf("first metric = %+v", flat[0])
	}
}

// TestDisabledPathNoAlloc pins the acceptance criterion that the disabled
// hot path performs no allocation.
func TestDisabledPathNoAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot.count")
	h := r.Histogram("hot.lat_ns")
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(17)
		sp := h.Span()
		sp.End()
	}); n != 0 {
		t.Errorf("disabled path allocates %v per op", n)
	}
	if c.Value() != 0 || h.Count() != 0 {
		t.Error("disabled path must not record")
	}
}
