package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decodeTrace parses a Chrome trace-event export back into its event list.
func decodeTrace(t *testing.T, data []byte) []TraceEvent {
	t.Helper()
	var out chromeTrace
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	return out.TraceEvents
}

func TestTracerDisabledIsNoop(t *testing.T) {
	tr := NewTracer()
	sp := tr.Begin("x", "c", MainLane, NoSpan)
	if sp.ID() != NoSpan {
		t.Errorf("disabled Begin allocated id %d", sp.ID())
	}
	sp.End()
	if lane := tr.NewLane("w"); lane != MainLane {
		t.Errorf("disabled NewLane = %d, want MainLane", lane)
	}
	if n := len(tr.Events()); n != 0 {
		t.Errorf("disabled tracer recorded %d events", n)
	}
}

func TestTracerHierarchyAndChromeExport(t *testing.T) {
	tr := NewTracer()
	tr.SetEnabled(true)
	root := tr.Begin("par.ForEach n=2 workers=2", "par", MainLane, NoSpan)
	lane0 := tr.NewLane("worker 0")
	lane1 := tr.NewLane("worker 1")
	if lane0 == MainLane || lane1 == MainLane || lane0 == lane1 {
		t.Fatalf("lanes not distinct: %d %d", lane0, lane1)
	}
	c0 := tr.Begin("item 0", "par.item", lane0, root.ID())
	c1 := tr.Begin("item 1", "par.item", lane1, root.ID())
	c0.End()
	c1.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())

	laneNames := map[int]string{}
	var complete []TraceEvent
	for _, e := range events {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				laneNames[e.TID] = e.Args["name"].(string)
			}
		case "X":
			complete = append(complete, e)
		}
	}
	if laneNames[MainLane] != "main" || laneNames[lane0] != "worker 0" || laneNames[lane1] != "worker 1" {
		t.Errorf("lane metadata = %v", laneNames)
	}
	if len(complete) != 3 {
		t.Fatalf("complete events = %d, want 3", len(complete))
	}
	// Events are sorted by start time: the root span began first.
	if complete[0].Name != "par.ForEach n=2 workers=2" || complete[0].TID != MainLane {
		t.Errorf("first event = %+v", complete[0])
	}
	rootID := complete[0].Args["id"].(float64)
	if _, hasParent := complete[0].Args["parent"]; hasParent {
		t.Error("root span must not carry a parent arg")
	}
	for _, e := range complete[1:] {
		if e.Cat != "par.item" {
			t.Errorf("child category = %q", e.Cat)
		}
		if e.Args["parent"].(float64) != rootID {
			t.Errorf("child parent = %v, want root id %v", e.Args["parent"], rootID)
		}
		if e.TS < 0 || e.Dur < 0 {
			t.Errorf("negative timing: %+v", e)
		}
	}
}

func TestTracerLimitDropsAndCounts(t *testing.T) {
	tr := NewTracer()
	tr.SetEnabled(true)
	tr.SetLimit(3)
	for i := 0; i < 10; i++ {
		tr.Begin("s", "c", MainLane, NoSpan).End()
	}
	if n := len(tr.Events()); n != 3 {
		t.Errorf("retained %d events, want 3", n)
	}
	if d := tr.Dropped(); d != 7 {
		t.Errorf("dropped = %d, want 7", d)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("7 events dropped")) {
		t.Error("export must surface the dropped-event count")
	}
	tr.Reset()
	if len(tr.Events()) != 0 || tr.Dropped() != 0 {
		t.Error("Reset must clear events and dropped count")
	}
}
