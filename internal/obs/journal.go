package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one line of the structured JSONL run journal. cmd/repro emits
// one event per experiment phase (plus run_start/run_end bracketing
// events); each carries the seed, sizes, timing and a metrics snapshot of
// the work done during that phase.
type Event struct {
	// Time is the wall-clock emission time (RFC 3339, filled by Emit when
	// empty).
	Time string `json:"time"`
	// Phase labels the pipeline phase: "run_start", "experiment",
	// "run_end".
	Phase string `json:"phase"`
	// ID is the experiment id (e.g. "E02") for experiment events.
	ID string `json:"id,omitempty"`
	// Seed is the random seed the phase ran under.
	Seed int64 `json:"seed"`
	// Quick reports whether CI sizes were used.
	Quick bool `json:"quick"`
	// Sizes carries phase-specific sizes (rows, experiments, failures...).
	Sizes map[string]int `json:"sizes,omitempty"`
	// Seconds is the phase wall-clock duration.
	Seconds float64 `json:"seconds,omitempty"`
	// Error is the failure message for phases that errored.
	Error string `json:"error,omitempty"`
	// Trace is the wire-propagated trace id (X-Trace-Id) of the request
	// that caused the event, linking journal lines to Chrome-trace spans.
	Trace string `json:"trace,omitempty"`
	// Metrics is the snapshot (usually a delta) of work done in the phase.
	Metrics *Snapshot `json:"metrics,omitempty"`
	// Curve is the convergence sample for "attack.converge" events — one
	// (x, y) point of a streaming attack's accuracy-vs-queries curve (see
	// CurveSet). Nil on every other phase.
	Curve *CurveSample `json:"curve,omitempty"`
}

// journalRing is how many recent events a journal retains for subscriber
// replay (the SSE /journal tail).
const journalRing = 256

// mJournalDropped counts events dropped for slow journal subscribers: an
// SSE consumer comparing its received-event count against this counter
// (or against Journal.Dropped) can detect gaps in a tailed journal. The
// JSONL file itself is always complete — only the live fan-out drops.
var mJournalDropped = Default().Counter("obs.journal_dropped")

// Journal writes Events as JSON lines and fans them out to live
// subscribers (the serve package's SSE /journal endpoint). Safe for
// concurrent use.
type Journal struct {
	mu      sync.Mutex
	w       io.Writer
	events  int
	recent  []Event // last journalRing events, for subscriber replay
	subs    map[int]chan Event
	nextID  int
	dropped int64 // events dropped across all slow subscribers
}

// NewJournal returns a journal writing to w.
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// Emit writes one event as a single JSON line, stamping Time if unset, and
// broadcasts it to subscribers (dropping it for any subscriber whose
// buffer is full — a slow tail reader never blocks the run).
func (j *Journal) Emit(e Event) error {
	if e.Time == "" {
		e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("obs: journal marshal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("obs: journal write: %w", err)
	}
	j.events++
	j.recent = append(j.recent, e)
	if len(j.recent) > journalRing {
		j.recent = j.recent[len(j.recent)-journalRing:]
	}
	for _, ch := range j.subs {
		select {
		case ch <- e:
		default:
			// Slow subscriber: drop the event for it rather than blocking
			// the run. The drop is observable (Dropped and the
			// obs.journal_dropped counter) so tail readers can detect gaps.
			j.dropped++
			mJournalDropped.Add(1)
		}
	}
	return nil
}

// Subscribe registers a live tail: it returns the retained recent events
// (replay) and a channel carrying every event emitted from now on, with no
// gap or overlap between the two. The channel buffers buf events; when the
// subscriber falls behind (its buffer is full at Emit time), the new event
// is dropped for that subscriber rather than blocking Emit — the channel
// then carries a gapped sequence, with each drop counted in Dropped and
// the obs.journal_dropped metric. Consumers needing the complete record
// read the JSONL file, which never drops. cancel unregisters the
// subscriber and closes the channel.
func (j *Journal) Subscribe(buf int) (replay []Event, ch <-chan Event, cancel func()) {
	if buf < 1 {
		buf = 1
	}
	c := make(chan Event, buf)
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append(replay, j.recent...)
	if j.subs == nil {
		j.subs = map[int]chan Event{}
	}
	id := j.nextID
	j.nextID++
	j.subs[id] = c
	var once sync.Once
	cancel = func() {
		once.Do(func() {
			j.mu.Lock()
			delete(j.subs, id)
			j.mu.Unlock()
			close(c)
		})
	}
	return replay, c, cancel
}

// Dropped returns the total number of events dropped across all slow
// subscribers (the JSONL file itself never drops).
func (j *Journal) Dropped() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Events returns the number of events emitted so far.
func (j *Journal) Events() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.events
}

// ReadEvents parses a JSONL journal back into events (for tests and the
// bench summarizer).
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); errors.Is(err, io.EOF) {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: journal parse: %w", err)
		}
		out = append(out, e)
	}
}
