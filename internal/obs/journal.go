package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one line of the structured JSONL run journal. cmd/repro emits
// one event per experiment phase (plus run_start/run_end bracketing
// events); each carries the seed, sizes, timing and a metrics snapshot of
// the work done during that phase.
type Event struct {
	// Time is the wall-clock emission time (RFC 3339, filled by Emit when
	// empty).
	Time string `json:"time"`
	// Phase labels the pipeline phase: "run_start", "experiment",
	// "run_end".
	Phase string `json:"phase"`
	// ID is the experiment id (e.g. "E02") for experiment events.
	ID string `json:"id,omitempty"`
	// Seed is the random seed the phase ran under.
	Seed int64 `json:"seed"`
	// Quick reports whether CI sizes were used.
	Quick bool `json:"quick"`
	// Sizes carries phase-specific sizes (rows, experiments, failures...).
	Sizes map[string]int `json:"sizes,omitempty"`
	// Seconds is the phase wall-clock duration.
	Seconds float64 `json:"seconds,omitempty"`
	// Error is the failure message for phases that errored.
	Error string `json:"error,omitempty"`
	// Metrics is the snapshot (usually a delta) of work done in the phase.
	Metrics *Snapshot `json:"metrics,omitempty"`
}

// Journal writes Events as JSON lines. Safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	w      io.Writer
	events int
}

// NewJournal returns a journal writing to w.
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// Emit writes one event as a single JSON line, stamping Time if unset.
func (j *Journal) Emit(e Event) error {
	if e.Time == "" {
		e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("obs: journal marshal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("obs: journal write: %w", err)
	}
	j.events++
	return nil
}

// Events returns the number of events emitted so far.
func (j *Journal) Events() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.events
}

// ReadEvents parses a JSONL journal back into events (for tests and the
// bench summarizer).
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: journal parse: %w", err)
		}
		out = append(out, e)
	}
}
