// Package obs is the repository's dependency-free observability layer: a
// metrics registry (counters, gauges, histograms — all with atomic hot
// paths), span timers, point-in-time snapshots with deltas, a structured
// JSONL run journal, machine-readable benchmark summaries, and pprof/trace
// flag helpers for the cmd tools.
//
// Every quantitative claim the paper makes (Dinur–Nissim query complexity,
// LP reconstruction cost, PSO success rates) is a statement about how much
// work an attacker's pipeline does. The attack and defense packages
// (query, lp, sat, recon, census, pso, diffix) record that work here, so
// every experiment run can report query counts, simplex pivots, SAT
// conflicts and match rates alongside its table.
//
// Registries start disabled: the disabled path of every instrument is a
// single atomic load with no allocation, so instrumentation can stay
// compiled into hot paths permanently. cmd/repro -metrics (and the bench
// harness) enable the default registry for the duration of a run.
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is not
// usable; obtain counters from a Registry.
type Counter struct {
	v       atomic.Int64
	enabled *atomic.Bool
}

// Add increments the counter by delta when the owning registry is enabled.
func (c *Counter) Add(delta int64) {
	if c.enabled.Load() {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value metric.
type Gauge struct {
	bits    atomic.Uint64
	enabled *atomic.Bool
}

// Set records the gauge value when the owning registry is enabled.
func (g *Gauge) Set(v float64) {
	if g.enabled.Load() {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last recorded value (zero if never set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram aggregates non-negative int64 observations (sizes, counts,
// nanosecond durations) into exponential base-2 buckets with atomic
// count/sum/min/max. Negative observations clamp to zero.
type Histogram struct {
	enabled *atomic.Bool
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value when the owning registry is enabled.
func (h *Histogram) Observe(v int64) {
	if !h.enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Stat summarizes the histogram, including the bucket counts (trimmed of
// trailing empty buckets) and the quantiles derived from them.
func (h *Histogram) Stat() HistStat {
	s := HistStat{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
		s.Mean = float64(s.Sum) / float64(s.Count)
		top := 0
		for i := range h.buckets {
			if h.buckets[i].Load() > 0 {
				top = i
			}
		}
		s.Buckets = make([]int64, top+1)
		for i := range s.Buckets {
			s.Buckets[i] = h.buckets[i].Load()
		}
		s.fillQuantiles()
	}
	return s
}

// BucketBounds returns the value range [lo, hi) of base-2 bucket i:
// bucket 0 holds exactly 0, bucket i >= 1 holds v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
func BucketBounds(i int) (lo, hi float64) {
	if i <= 0 {
		return 0, 0
	}
	lo = math.Ldexp(1, i-1)
	return lo, 2 * lo
}

// BucketUpperBound returns the largest integer value bucket i can hold —
// the inclusive Prometheus `le` boundary of the cumulative exposition:
// 0 for bucket 0, 2^i - 1 for bucket i >= 1.
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Span times one operation into a latency histogram. The zero Span (from a
// disabled registry) is a no-op; End on it costs one nil check.
type Span struct {
	h     *Histogram
	start time.Time
}

// Span starts a timer against this histogram; it returns the zero Span
// when the owning registry is disabled, skipping the time.Now call.
func (h *Histogram) Span() Span {
	if h == nil || !h.enabled.Load() {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the elapsed nanoseconds and returns them (0 for a zero Span).
func (s Span) End() int64 {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start).Nanoseconds()
	s.h.Observe(d)
	return d
}

// Registry holds named metrics. Metric accessors are get-or-create and
// safe for concurrent use; the returned pointers may be cached and used
// from any goroutine. A registry starts disabled.
type Registry struct {
	enabled  atomic.Bool
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the internal packages record
// into. It starts disabled; cmd tools and benchmarks enable it.
func Default() *Registry { return defaultRegistry }

// SetEnabled turns recording on or off. Metrics retain their values when
// disabled; use Reset to zero them.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is recording.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{enabled: &r.enabled}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{enabled: &r.enabled}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{enabled: &r.enabled}
	h.min.Store(math.MaxInt64)
	r.hists[name] = h
	return h
}

// StartSpan starts a timer into the named histogram (no-op when disabled).
func (r *Registry) StartSpan(name string) Span {
	if !r.enabled.Load() {
		return Span{}
	}
	return r.Histogram(name).Span()
}

// Reset zeroes every registered metric (the metric pointers stay valid).
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		h.count.Store(0)
		h.sum.Store(0)
		h.min.Store(math.MaxInt64)
		h.max.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
}
