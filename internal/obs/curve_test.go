package obs

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

func TestCurveAddAndSnapshot(t *testing.T) {
	cs := NewCurveSet()
	c := cs.Curve("recon.lp.accuracy")
	c.Add(16, 0.55)
	c.AddStats(32, 0.80, map[string]int64{"chunk": 16})
	c.Add(48, 0.97)

	if got := c.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	pts := c.Points()
	if pts[1].X != 32 || pts[1].Y != 0.80 || pts[1].Stats["chunk"] != 16 {
		t.Errorf("point 1 = %+v", pts[1])
	}
	// Curve handles to the same name share the series.
	if got := cs.Curve("recon.lp.accuracy").Len(); got != 3 {
		t.Errorf("re-obtained curve Len = %d, want 3", got)
	}

	cs.Curve("census.exact_fraction").Add(1, 0.1)
	if names := cs.Names(); len(names) != 2 || names[0] != "recon.lp.accuracy" || names[1] != "census.exact_fraction" {
		t.Errorf("Names = %v", names)
	}
	snap := cs.Snapshot()
	if len(snap["recon.lp.accuracy"]) != 3 || len(snap["census.exact_fraction"]) != 1 {
		t.Errorf("Snapshot = %+v", snap)
	}
	// Snapshot is a copy: mutating it must not touch the set.
	snap["recon.lp.accuracy"][0].Y = -1
	if got := c.Points()[0].Y; got != 0.55 {
		t.Errorf("snapshot mutation leaked into the set: y = %v", got)
	}
}

func TestCurveMonotonePanics(t *testing.T) {
	c := NewCurveSet().Curve("recon.lp.accuracy")
	c.Add(10, 0.5)
	for _, x := range []int64{10, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) after x=10 did not panic", x)
				}
			}()
			c.Add(x, 0.6)
		}()
	}
	// The offending point must not have been recorded.
	if got := c.Len(); got != 1 {
		t.Errorf("Len after rejected points = %d, want 1", got)
	}
}

func TestCurveSubscribeReplayLiveAndDrop(t *testing.T) {
	cs := NewCurveSet()
	c := cs.Curve("recon.lp.accuracy")
	c.Add(1, 0.5)

	replay, ch, cancel := cs.Subscribe(8)
	if len(replay) != 1 || replay[0].Name != "recon.lp.accuracy" || replay[0].X != 1 {
		t.Fatalf("replay = %+v", replay)
	}
	c.Add(2, 0.6)
	select {
	case s := <-ch:
		if s.X != 2 || s.Y != 0.6 {
			t.Errorf("live sample = %+v", s)
		}
	case <-time.After(time.Second):
		t.Fatal("live sample never arrived")
	}

	// A full subscriber buffer drops samples rather than blocking Add.
	_, slow, cancelSlow := cs.Subscribe(1)
	for i := int64(3); i < 8; i++ {
		c.Add(i, 0.7)
	}
	if got := len(slow); got != 1 {
		t.Errorf("slow subscriber buffered %d samples, want 1 (rest dropped)", got)
	}
	if got := cs.Dropped(); got != 4 {
		t.Errorf("Dropped = %d, want 4", got)
	}
	cancelSlow()
	cancel()
	cancel() // idempotent
	for range ch {
	}
	c.Add(100, 0.9) // must not panic with no subscribers
}

func TestCurveJournalMirror(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	cs := NewCurveSet()
	cs.SetJournal(j)
	c := cs.Curve("recon.lp.accuracy")
	c.AddStats(32, 0.75, map[string]int64{"chunk": 32})

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("journal events = %d, want 1", len(events))
	}
	e := events[0]
	if e.Phase != "attack.converge" || e.ID != "recon.lp.accuracy" {
		t.Errorf("event = %+v", e)
	}
	if e.Curve == nil || e.Curve.Name != "recon.lp.accuracy" || e.Curve.X != 32 || e.Curve.Y != 0.75 || e.Curve.Stats["chunk"] != 32 {
		t.Errorf("event curve sample = %+v", e.Curve)
	}

	// attack.converge events must not pollute bench summaries, which fold
	// only run_start/experiment phases.
	sum := SummarizeEvents("rev", events)
	if len(sum.Experiments) != 0 {
		t.Errorf("converge events leaked into bench summary: %+v", sum.Experiments)
	}

	cs.SetJournal(nil)
	c.Add(64, 0.9)
	if got := j.Events(); got != 1 {
		t.Errorf("journal events after detach = %d, want 1", got)
	}
}

func TestCurveTracerCounterLane(t *testing.T) {
	tr := NewTracer()
	tr.SetEnabled(true)
	cs := NewCurveSet()
	cs.SetTracer(tr)
	cs.Curve("recon.lp.accuracy").Add(16, 0.5)
	cs.Curve("recon.lp.accuracy").Add(32, 0.8)

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("trace events = %d, want 2", len(events))
	}
	for i, e := range events {
		if e.Ph != "C" || e.Name != "recon.lp.accuracy" {
			t.Errorf("event %d = %+v, want Ph C counter", i, e)
		}
	}
	if v := events[1].Args["value"]; v != 0.8 {
		t.Errorf("counter value = %v, want 0.8", v)
	}

	// The counter lane must survive the Chrome trace export.
	var out strings.Builder
	if err := tr.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"ph":"C"`) {
		t.Errorf("Chrome trace export carries no counter events: %s", out.String())
	}
}

func TestCurveReset(t *testing.T) {
	cs := NewCurveSet()
	cs.Curve("recon.lp.accuracy").Add(1, 0.5)
	_, ch, cancel := cs.Subscribe(1)
	defer cancel()
	cs.Reset()
	if len(cs.Names()) != 0 || cs.Dropped() != 0 {
		t.Errorf("Reset left names %v dropped %d", cs.Names(), cs.Dropped())
	}
	// Subscribers survive a Reset and x restarts from scratch.
	cs.Curve("recon.lp.accuracy").Add(1, 0.2)
	select {
	case s := <-ch:
		if s.X != 1 || s.Y != 0.2 {
			t.Errorf("post-Reset sample = %+v", s)
		}
	case <-time.After(time.Second):
		t.Fatal("post-Reset sample never arrived")
	}
}

func TestJournalDroppedCounter(t *testing.T) {
	j := NewJournal(io.Discard)
	if got := j.Dropped(); got != 0 {
		t.Fatalf("fresh journal Dropped = %d", got)
	}
	_, slow, cancel := j.Subscribe(1)
	defer cancel()
	for i := 0; i < 5; i++ {
		if err := j.Emit(Event{Phase: "experiment", ID: "flood"}); err != nil {
			t.Fatal(err)
		}
	}
	// Buffer of 1: the first event fills it, the remaining 4 drop.
	if got := j.Dropped(); got != 4 {
		t.Errorf("Dropped = %d, want 4", got)
	}
	if got := len(slow); got != 1 {
		t.Errorf("slow subscriber buffered %d events, want 1", got)
	}
	// The gap is detectable: emitted - received - buffered == dropped.
	if emitted := j.Events(); int64(emitted-len(slow)) != j.Dropped() {
		t.Errorf("gap arithmetic broken: emitted %d buffered %d dropped %d", emitted, len(slow), j.Dropped())
	}
}
