package obs

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	snap := Snapshot{Counters: map[string]int64{"query.count": 42}}
	events := []Event{
		{Phase: "run_start", Seed: 7, Quick: true},
		{Phase: "experiment", ID: "E02", Seed: 7, Quick: true, Seconds: 0.5,
			Sizes: map[string]int{"rows": 12}, Metrics: &snap},
		{Phase: "experiment", ID: "E11", Seed: 7, Quick: true, Error: "boom"},
		{Phase: "run_end", Seed: 7, Quick: true, Seconds: 1.25},
	}
	for _, e := range events {
		if err := j.Emit(e); err != nil {
			t.Fatal(err)
		}
	}
	if j.Events() != len(events) {
		t.Errorf("Events = %d", j.Events())
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(events) {
		t.Fatalf("journal has %d lines, want %d", lines, len(events))
	}

	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("parsed %d events", len(got))
	}
	if got[0].Time == "" {
		t.Error("Emit must stamp Time")
	}
	e := got[1]
	if e.ID != "E02" || e.Sizes["rows"] != 12 || e.Metrics == nil || e.Metrics.Counters["query.count"] != 42 {
		t.Errorf("experiment event mangled: %+v", e)
	}
	if got[2].Error != "boom" {
		t.Errorf("error event mangled: %+v", got[2])
	}
}

func TestSummarizeEventsAndWriteFile(t *testing.T) {
	snap := Snapshot{Counters: map[string]int64{"lp.pivots": 900}}
	events := []Event{
		{Phase: "run_start", Time: "2026-08-05T00:00:00Z", Seed: 3, Quick: true},
		{Phase: "experiment", ID: "E02", Seconds: 1.5, Metrics: &snap},
		{Phase: "experiment", ID: "E11", Seconds: 0.5, Error: "nope"},
		{Phase: "run_end"},
	}
	sum := SummarizeEvents("abc123abc123", events)
	if sum.Seed != 3 || !sum.Quick || sum.Rev != "abc123abc123" {
		t.Errorf("summary header: %+v", sum)
	}
	if len(sum.Experiments) != 2 || sum.TotalSeconds != 2 {
		t.Errorf("summary body: %+v", sum)
	}
	if sum.Experiments[0].Counters["lp.pivots"] != 900 {
		t.Errorf("counters not carried: %+v", sum.Experiments[0])
	}
	if sum.Experiments[1].Error != "nope" {
		t.Errorf("error not carried: %+v", sum.Experiments[1])
	}

	dir := t.TempDir()
	path, err := sum.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_abc123abc123.json" {
		t.Errorf("path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"rev"`, `"E02"`, `"lp.pivots"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("summary file missing %s", want)
		}
	}

	// A hostile rev must not escape the directory.
	if p, err := (BenchSummary{Rev: "../weird rev"}).WriteFile(dir); err != nil {
		t.Fatal(err)
	} else if filepath.Dir(p) != dir || strings.ContainsAny(filepath.Base(p), "/ ") {
		t.Errorf("unsanitized path %s", p)
	}
}

func TestGitRev(t *testing.T) {
	dir := t.TempDir()
	git := filepath.Join(dir, ".git")
	if err := os.MkdirAll(filepath.Join(git, "refs", "heads"), 0o755); err != nil {
		t.Fatal(err)
	}
	hash := "0123456789abcdef0123456789abcdef01234567"

	// Detached HEAD.
	os.WriteFile(filepath.Join(git, "HEAD"), []byte(hash+"\n"), 0o644)
	if got := GitRev(dir); got != hash[:12] {
		t.Errorf("detached rev = %q", got)
	}

	// Symbolic ref to a loose ref file, resolved from a subdirectory.
	os.WriteFile(filepath.Join(git, "HEAD"), []byte("ref: refs/heads/main\n"), 0o644)
	os.WriteFile(filepath.Join(git, "refs", "heads", "main"), []byte(hash+"\n"), 0o644)
	sub := filepath.Join(dir, "a", "b")
	os.MkdirAll(sub, 0o755)
	if got := GitRev(sub); got != hash[:12] {
		t.Errorf("loose-ref rev = %q", got)
	}

	// Packed ref fallback.
	os.Remove(filepath.Join(git, "refs", "heads", "main"))
	packed := "# pack-refs with: peeled fully-peeled sorted\n" + hash + " refs/heads/main\n"
	os.WriteFile(filepath.Join(git, "packed-refs"), []byte(packed), 0o644)
	if got := GitRev(dir); got != hash[:12] {
		t.Errorf("packed-ref rev = %q", got)
	}

	// No repository at all.
	if got := GitRev(filepath.Join(os.TempDir(), "definitely", "not", "a", "repo")); got != "unknown" {
		t.Errorf("no-repo rev = %q", got)
	}
}

// TestJournalSubscribe pins the live-tail contract serve's SSE endpoint
// relies on: replay of retained events, gap-free handoff to the live
// channel, non-blocking drops for slow subscribers, and a close-once
// cancel that survives later emits.
func TestJournalSubscribe(t *testing.T) {
	j := NewJournal(io.Discard)
	if err := j.Emit(Event{Phase: "run_start", Seed: 1}); err != nil {
		t.Fatal(err)
	}

	replay, ch, cancel := j.Subscribe(4)
	if len(replay) != 1 || replay[0].Phase != "run_start" {
		t.Fatalf("replay = %+v", replay)
	}
	if err := j.Emit(Event{Phase: "experiment", ID: "E05"}); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-ch:
		if e.ID != "E05" {
			t.Errorf("live event = %+v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("live event never arrived")
	}

	// A full subscriber buffer drops events rather than blocking Emit.
	_, slow, cancelSlow := j.Subscribe(1)
	for i := 0; i < 5; i++ {
		if err := j.Emit(Event{Phase: "experiment", ID: "flood"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(slow); got != 1 {
		t.Errorf("slow subscriber buffered %d events, want 1 (rest dropped)", got)
	}
	cancelSlow()

	cancel()
	cancel() // idempotent
	// Drain anything buffered before cancel; the channel must end closed
	// (this loop would hang forever otherwise).
	for range ch {
	}
	if err := j.Emit(Event{Phase: "run_end"}); err != nil {
		t.Fatal(err) // must not panic on the closed channel
	}
}
