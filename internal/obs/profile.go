package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiler wires the standard -cpuprofile/-memprofile/-trace flags into a
// command. Register with AddProfileFlags before flag.Parse, then:
//
//	stop, err := prof.Start()
//	if err != nil { ... }
//	defer stop()
type Profiler struct {
	cpu, mem, traceOut *string

	cpuFile, traceFile *os.File
}

// AddProfileFlags registers the profiling flags on fs (use
// flag.CommandLine in mains) and returns the controller.
func AddProfileFlags(fs *flag.FlagSet) *Profiler {
	p := &Profiler{}
	p.cpu = fs.String("cpuprofile", "", "write a CPU profile to this file")
	p.mem = fs.String("memprofile", "", "write a heap profile to this file on exit")
	p.traceOut = fs.String("trace", "", "write a runtime execution trace to this file")
	return p
}

// Start begins the requested profiles. The returned stop function is safe
// to call exactly once (typically via defer) and flushes every profile.
func (p *Profiler) Start() (stop func(), err error) {
	if *p.cpu != "" {
		p.cpuFile, err = os.Create(*p.cpu)
		if err != nil {
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(p.cpuFile); err != nil {
			p.cpuFile.Close()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
	}
	if *p.traceOut != "" {
		p.traceFile, err = os.Create(*p.traceOut)
		if err != nil {
			p.stopCPU()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		if err := trace.Start(p.traceFile); err != nil {
			p.stopCPU()
			p.traceFile.Close()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
	}
	return p.stop, nil
}

func (p *Profiler) stopCPU() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
}

func (p *Profiler) stop() {
	p.stopCPU()
	if p.traceFile != nil {
		trace.Stop()
		p.traceFile.Close()
		p.traceFile = nil
	}
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obs: memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "obs: memprofile: %v\n", err)
		}
	}
}
