package obs

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiler wires the standard -cpuprofile/-memprofile/-trace flags into a
// command. Register with AddProfileFlags before flag.Parse, then:
//
//	stop, err := prof.Start()
//	if err != nil { ... }
//	defer func() {
//		if err := stop(); err != nil { ... }
//	}()
//
// The stop function flushes every profile and returns the joined errors of
// any writes that failed (a heap profile that cannot be written, a profile
// file that fails to close) — profile loss is surfaced, not just printed.
type Profiler struct {
	cpu, mem, traceOut *string

	cpuFile, traceFile *os.File
}

// AddProfileFlags registers the profiling flags on fs (use
// flag.CommandLine in mains) and returns the controller.
func AddProfileFlags(fs *flag.FlagSet) *Profiler {
	p := &Profiler{}
	p.cpu = fs.String("cpuprofile", "", "write a CPU profile to this file")
	p.mem = fs.String("memprofile", "", "write a heap profile to this file on exit")
	p.traceOut = fs.String("trace", "", "write a runtime execution trace to this file")
	return p
}

// Start begins the requested profiles. When a later profile fails to start
// (e.g. the trace file cannot be created), every profile already started
// is stopped and its file closed before the error returns. The returned
// stop function is safe to call exactly once (typically via defer).
func (p *Profiler) Start() (stop func() error, err error) {
	if *p.cpu != "" {
		p.cpuFile, err = os.Create(*p.cpu)
		if err != nil {
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(p.cpuFile); err != nil {
			p.cpuFile.Close()
			p.cpuFile = nil
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
	}
	if *p.traceOut != "" {
		p.traceFile, err = os.Create(*p.traceOut)
		if err != nil {
			p.stopCPU()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		if err := trace.Start(p.traceFile); err != nil {
			p.stopCPU()
			p.traceFile.Close()
			p.traceFile = nil
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
	}
	return p.stop, nil
}

func (p *Profiler) stopCPU() error {
	if p.cpuFile == nil {
		return nil
	}
	pprof.StopCPUProfile()
	err := p.cpuFile.Close()
	p.cpuFile = nil
	if err != nil {
		return fmt.Errorf("obs: cpuprofile: %w", err)
	}
	return nil
}

func (p *Profiler) stop() error {
	var errs []error
	if err := p.stopCPU(); err != nil {
		errs = append(errs, err)
	}
	if p.traceFile != nil {
		trace.Stop()
		if err := p.traceFile.Close(); err != nil {
			errs = append(errs, fmt.Errorf("obs: trace: %w", err))
		}
		p.traceFile = nil
	}
	if *p.mem != "" {
		if err := p.writeHeapProfile(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func (p *Profiler) writeHeapProfile() error {
	f, err := os.Create(*p.mem)
	if err != nil {
		return fmt.Errorf("obs: memprofile: %w", err)
	}
	runtime.GC()
	werr := pprof.WriteHeapProfile(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("obs: memprofile: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("obs: memprofile: %w", cerr)
	}
	return nil
}
