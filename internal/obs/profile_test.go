package obs

import (
	"flag"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"testing"
)

// newProfiler builds a Profiler from command-line-style args.
func newProfiler(t *testing.T, args ...string) *Profiler {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := AddProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfilerSuccessPath(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	p := newProfiler(t, "-cpuprofile", cpu, "-memprofile", mem)
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, path := range []string{cpu, mem} {
		if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", path, err)
		}
	}
}

// TestProfilerPartialFailureStopsCPUProfile pins the cleanup contract:
// when the trace file cannot be created after the CPU profile has started,
// Start must stop and close the CPU profile before returning the error —
// observable because a fresh CPU profile can then be started.
func TestProfilerPartialFailureStopsCPUProfile(t *testing.T) {
	dir := t.TempDir()
	p := newProfiler(t,
		"-cpuprofile", filepath.Join(dir, "cpu.pprof"),
		"-trace", filepath.Join(dir, "missing-subdir", "trace.out"))
	if _, err := p.Start(); err == nil {
		t.Fatal("Start must fail when the trace file cannot be created")
	} else if !strings.Contains(err.Error(), "trace") {
		t.Errorf("error %q does not name the trace stage", err)
	}
	f, err := os.Create(filepath.Join(dir, "cpu2.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		t.Fatalf("CPU profile left running after failed Start: %v", err)
	}
	pprof.StopCPUProfile()
}

// TestProfilerStopSurfacesHeapWriteError: heap-profile write failures were
// previously only printed to stderr; they must now surface as an error
// from the stop function.
func TestProfilerStopSurfacesHeapWriteError(t *testing.T) {
	dir := t.TempDir()
	p := newProfiler(t, "-memprofile", filepath.Join(dir, "missing-subdir", "mem.pprof"))
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("stop must surface the heap-profile write error")
	} else if !strings.Contains(err.Error(), "memprofile") {
		t.Errorf("error %q does not name the memprofile stage", err)
	}
}

func TestProfilerNoFlagsIsNoop(t *testing.T) {
	p := newProfiler(t)
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Errorf("no-op stop returned %v", err)
	}
}
