package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one traced span. NoSpan (zero) means "no parent" /
// "not traced".
type SpanID int64

// NoSpan is the zero SpanID: a span with no parent, or a disabled span.
const NoSpan SpanID = 0

// MainLane is the timeline lane (Chrome trace tid) of the orchestrating
// goroutine. Worker goroutines get their own lanes via Tracer.NewLane.
const MainLane = 0

// tracePID is the synthetic Chrome trace process id; the whole run is one
// process.
const tracePID = 1

// DefaultTraceLimit caps retained trace events so a full-size run (which
// can execute millions of pool items) cannot exhaust memory; events beyond
// the cap are counted in Dropped and omitted from the export.
const DefaultTraceLimit = 1 << 20

// TraceEvent is one record of the Chrome "Trace Event Format" — the JSON
// schema Perfetto and chrome://tracing load. Complete events (Ph "X")
// carry a start timestamp and duration in microseconds; metadata events
// (Ph "M") name the process and the per-worker thread lanes.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer collects hierarchical spans with per-goroutine lane attribution
// and exports them as Chrome trace-event JSON. Unlike the Registry's
// latency histograms (which aggregate), the Tracer keeps individual span
// records: one timeline lane per pool worker, one complete event per work
// item, each carrying its span id and its parent's id. It starts disabled;
// the disabled Begin path is one atomic load.
type Tracer struct {
	enabled atomic.Bool
	nextID  atomic.Int64 // span ids; lane ids share the counter's mutex

	mu      sync.Mutex
	start   time.Time
	events  []TraceEvent
	lanes   map[int]string // tid -> lane name (MainLane is preset)
	nextTID int
	limit   int
	dropped int64
	procs   []traceProc // merged remote processes (AddProcess)
}

// traceProc is one merged remote process: its events are already re-based
// to this tracer's epoch and stamped with their own pid.
type traceProc struct {
	pid    int
	name   string
	lanes  map[int]string
	events []TraceEvent
}

// NewTracer returns an empty, disabled tracer with the default event
// limit.
func NewTracer() *Tracer {
	t := &Tracer{}
	t.reset()
	return t
}

var defaultTracer = NewTracer()

// DefaultTracer returns the process-wide tracer internal/par records
// worker spans into. It starts disabled; cmd tools enable it for -spans.
func DefaultTracer() *Tracer { return defaultTracer }

// SetEnabled turns span collection on or off. The first enable stamps the
// trace epoch (timestamp zero of the exported timeline).
func (t *Tracer) SetEnabled(on bool) {
	if on {
		t.mu.Lock()
		if t.start.IsZero() {
			t.start = time.Now()
		}
		t.mu.Unlock()
	}
	t.enabled.Store(on)
}

// Enabled reports whether the tracer is collecting.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SetLimit caps the number of retained events (n <= 0 restores the
// default). Events recorded beyond the cap are dropped and counted.
func (t *Tracer) SetLimit(n int) {
	if n <= 0 {
		n = DefaultTraceLimit
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// Dropped returns the number of events discarded by the retention limit.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all collected events and lanes and re-stamps the epoch.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reset()
}

func (t *Tracer) reset() {
	t.start = time.Time{}
	if t.enabled.Load() {
		t.start = time.Now()
	}
	t.events = nil
	t.lanes = map[int]string{MainLane: "main"}
	t.nextTID = MainLane
	t.limit = DefaultTraceLimit
	t.dropped = 0
	t.procs = nil
}

// NewLane allocates a fresh timeline lane (Chrome trace tid) with the
// given display name — one per pool worker goroutine. Returns MainLane
// when the tracer is disabled.
func (t *Tracer) NewLane(name string) int {
	if !t.enabled.Load() {
		return MainLane
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextTID++
	t.lanes[t.nextTID] = name
	return t.nextTID
}

// TraceSpan is one in-flight traced operation. The zero TraceSpan (from a
// disabled tracer) is a no-op.
type TraceSpan struct {
	t      *Tracer
	name   string
	cat    string
	tid    int
	id     SpanID
	parent SpanID
	begin  time.Time
	args   map[string]any
}

// WithArg attaches one key/value argument to the span's exported event
// (e.g. the wire trace id a remote client propagates). No-op on the zero
// TraceSpan; returns the span for chaining.
func (s TraceSpan) WithArg(key string, v any) TraceSpan {
	if s.t == nil {
		return s
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[key] = v
	return s
}

// ID returns the span's id (NoSpan for a disabled span), usable as the
// parent of child spans.
func (s TraceSpan) ID() SpanID { return s.id }

// Begin starts a span named name in category cat on lane tid, recording
// parent as its hierarchical parent (NoSpan for roots). It returns the
// zero TraceSpan when the tracer is disabled.
func (t *Tracer) Begin(name, cat string, tid int, parent SpanID) TraceSpan {
	if !t.enabled.Load() {
		return TraceSpan{}
	}
	return TraceSpan{
		t:      t,
		name:   name,
		cat:    cat,
		tid:    tid,
		id:     SpanID(t.nextID.Add(1)),
		parent: parent,
		begin:  time.Now(),
	}
}

// End completes the span, appending one Chrome complete event carrying the
// span id and parent id as args. No-op on the zero TraceSpan.
func (s TraceSpan) End() {
	if s.t == nil {
		return
	}
	end := time.Now()
	args := map[string]any{"id": int64(s.id)}
	if s.parent != NoSpan {
		args["parent"] = int64(s.parent)
	}
	for k, v := range s.args {
		args[k] = v
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, TraceEvent{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		TS:   float64(s.begin.Sub(t.start).Nanoseconds()) / 1e3,
		Dur:  float64(end.Sub(s.begin).Nanoseconds()) / 1e3,
		PID:  tracePID,
		TID:  s.tid,
		Args: args,
	})
}

// Counter records one Chrome trace counter sample (Ph "C"): a named
// scalar series Perfetto renders as its own counter track — a line chart
// climbing next to the span lanes. The CurveSet mirrors convergence
// points here so a -spans export shows attack accuracy rising alongside
// the client/server spans that earned it. No-op while disabled; samples
// count against the retention limit like spans.
func (t *Tracer) Counter(name string, value float64) {
	if !t.enabled.Load() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, TraceEvent{
		Name: name,
		Cat:  "converge",
		Ph:   "C",
		TS:   float64(time.Since(t.start).Nanoseconds()) / 1e3,
		PID:  tracePID,
		TID:  MainLane,
		Args: map[string]any{"value": value},
	})
}

// Events returns a copy of the collected complete events (metadata lane
// events are synthesized at export time).
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

// Lanes returns a copy of the lane-name table (tid -> name).
func (t *Tracer) Lanes() map[int]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]string, len(t.lanes))
	for tid, name := range t.lanes {
		out[tid] = name
	}
	return out
}

// TraceDump is the transportable form of a tracer's collected state. The
// serve package's /trace endpoint returns it and Tracer.AddProcess merges
// a remote process's dump into a local export, which is how a
// `reconstruct -remote -spans` run folds the qserver's server-side spans
// into one Chrome trace next to its own client-side lanes. Epoch is the
// wall-clock instant of timestamp zero (unix microseconds): two processes
// on the same host share a wall clock, so re-basing one epoch onto the
// other interleaves their spans on a single timeline.
type TraceDump struct {
	V               int            `json:"v"`
	Process         string         `json:"process"`
	EpochUnixMicros int64          `json:"epoch_unix_us"`
	Lanes           map[int]string `json:"lanes"`
	Events          []TraceEvent   `json:"events"`
	Dropped         int64          `json:"dropped"`
}

// TraceDumpV is the TraceDump schema version.
const TraceDumpV = 1

// Dump snapshots the tracer's collected spans for transport (the /trace
// endpoint). process names the producing process in the merged export.
func (t *Tracer) Dump(process string) TraceDump {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := TraceDump{
		V:       TraceDumpV,
		Process: process,
		Lanes:   make(map[int]string, len(t.lanes)),
		Events:  make([]TraceEvent, len(t.events)),
		Dropped: t.dropped,
	}
	if !t.start.IsZero() {
		d.EpochUnixMicros = t.start.UnixMicro()
	}
	for tid, name := range t.lanes {
		d.Lanes[tid] = name
	}
	copy(d.Events, t.events)
	return d
}

// AddProcess merges a remote process's trace dump into this tracer's next
// export: the dump's events keep their own lanes under a fresh Chrome
// trace pid and are re-based from the dump's epoch onto this tracer's, so
// WriteChromeTrace renders both processes interleaved on one timeline.
// Merged events do not count against the local retention limit (the
// remote tracer already applied its own).
func (t *Tracer) AddProcess(d TraceDump) {
	t.mu.Lock()
	defer t.mu.Unlock()
	shift := 0.0
	if !t.start.IsZero() && d.EpochUnixMicros != 0 {
		shift = float64(d.EpochUnixMicros - t.start.UnixMicro())
	}
	p := traceProc{
		pid:    tracePID + 1 + len(t.procs),
		name:   d.Process,
		lanes:  make(map[int]string, len(d.Lanes)),
		events: make([]TraceEvent, len(d.Events)),
	}
	if p.name == "" {
		p.name = fmt.Sprintf("process %d", p.pid)
	}
	for tid, name := range d.Lanes {
		p.lanes[tid] = name
	}
	for i, e := range d.Events {
		e.TS += shift
		e.PID = p.pid
		p.events[i] = e
	}
	t.procs = append(t.procs, p)
}

// chromeTrace is the top-level JSON object Perfetto loads.
type chromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the collected spans as Chrome trace-event JSON
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing: process and
// thread-name metadata first, then the complete events sorted by start
// time. The tracer keeps its events; call Reset to discard them.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	events := make([]TraceEvent, len(t.events))
	copy(events, t.events)
	lanes := make(map[int]string, len(t.lanes))
	for tid, name := range t.lanes {
		lanes[tid] = name
	}
	dropped := t.dropped
	procs := make([]traceProc, len(t.procs))
	copy(procs, t.procs)
	t.mu.Unlock()

	for _, p := range procs {
		events = append(events, p.events...)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })

	meta := []TraceEvent{{
		Name: "process_name", Ph: "M", PID: tracePID,
		Args: map[string]any{"name": "singlingout"},
	}}
	tids := make([]int, 0, len(lanes))
	for tid := range lanes {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		meta = append(meta, TraceEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: tid,
			Args: map[string]any{"name": lanes[tid]},
		})
	}
	for _, p := range procs {
		meta = append(meta, TraceEvent{
			Name: "process_name", Ph: "M", PID: p.pid,
			Args: map[string]any{"name": p.name},
		})
		ptids := make([]int, 0, len(p.lanes))
		for tid := range p.lanes {
			ptids = append(ptids, tid)
		}
		sort.Ints(ptids)
		for _, tid := range ptids {
			meta = append(meta, TraceEvent{
				Name: "thread_name", Ph: "M", PID: p.pid, TID: tid,
				Args: map[string]any{"name": p.lanes[tid]},
			})
		}
	}
	if dropped > 0 {
		meta = append(meta, TraceEvent{
			Name: fmt.Sprintf("trace limit: %d events dropped", dropped),
			Cat:  "obs", Ph: "i", PID: tracePID, TID: MainLane,
			Args: map[string]any{"dropped": dropped},
		})
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(chromeTrace{TraceEvents: append(meta, events...), DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("obs: trace export: %w", err)
	}
	return nil
}
