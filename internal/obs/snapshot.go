package obs

import "sort"

// HistStat is a point-in-time histogram summary.
type HistStat struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
}

// Snapshot is a point-in-time copy of every metric in a registry. It is
// the unit the run journal records and the experiment tables render.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]float64  `json:"gauges,omitempty"`
	Histograms map[string]HistStat `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistStat, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Stat()
	}
	return s
}

// Delta returns the work done between prev and s: counters and histogram
// count/sum are subtracted (entries that did not move are dropped), while
// gauges keep their current value (dropped when unchanged) and histogram
// min/max cover the whole run up to s (they are not invertible). prev may
// be the zero Snapshot, in which case Delta just drops zero-valued
// entries.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistStat{},
	}
	for name, v := range s.Counters {
		if dv := v - prev.Counters[name]; dv != 0 {
			d.Counters[name] = dv
		}
	}
	for name, v := range s.Gauges {
		if v != prev.Gauges[name] {
			d.Gauges[name] = v
		}
	}
	for name, h := range s.Histograms {
		p := prev.Histograms[name]
		dh := HistStat{Count: h.Count - p.Count, Sum: h.Sum - p.Sum, Min: h.Min, Max: h.Max}
		if dh.Count == 0 {
			continue
		}
		dh.Mean = float64(dh.Sum) / float64(dh.Count)
		d.Histograms[name] = dh
	}
	return d
}

// Empty reports whether the snapshot carries no non-zero metric.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Metric is one named value in a flattened snapshot.
type Metric struct {
	Name  string
	Value float64
}

// Flat flattens the snapshot into name-sorted metrics suitable for table
// footers: counters and gauges verbatim, histograms as <name>.count and
// <name>.mean.
func (s Snapshot) Flat() []Metric {
	var out []Metric
	for name, v := range s.Counters {
		out = append(out, Metric{Name: name, Value: float64(v)})
	}
	for name, v := range s.Gauges {
		out = append(out, Metric{Name: name, Value: v})
	}
	for name, h := range s.Histograms {
		out = append(out, Metric{Name: name + ".count", Value: float64(h.Count)})
		out = append(out, Metric{Name: name + ".mean", Value: h.Mean})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
