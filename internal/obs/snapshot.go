package obs

import "sort"

// HistStat is a point-in-time histogram summary. Buckets carries the
// base-2 bucket counts (index i counts observations v with
// bits.Len64(v) == i; trailing empty buckets trimmed), from which the
// P50/P90/P99/P999 quantile estimates are derived — see Quantile for the
// estimator and its error bound.
type HistStat struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Min     int64   `json:"min"`
	Max     int64   `json:"max"`
	Mean    float64 `json:"mean"`
	P50     float64 `json:"p50,omitempty"`
	P90     float64 `json:"p90,omitempty"`
	P99     float64 `json:"p99,omitempty"`
	P999    float64 `json:"p999,omitempty"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (q in [0,1]) from the base-2 bucket
// counts: the containing bucket is located by cumulative rank and the
// value is linearly interpolated inside it, clamped to the observed
// [Min, Max]. The estimate is exact when the containing bucket holds a
// single distinct value at a bucket edge (all-equal and single-sample
// histograms included) and is otherwise within the bucket's factor-of-2
// width of the true sample quantile. Returns 0 on an empty histogram.
func (s HistStat) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q <= 0 {
		return float64(s.Min)
	}
	if q >= 1 {
		return float64(s.Max)
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Buckets {
		if c <= 0 {
			continue
		}
		fc := float64(c)
		if cum+fc >= rank {
			// Interpolate over the bucket's inclusive integer range
			// [lo, upper] so the single-value buckets (0 and 1) are exact.
			lo, _ := BucketBounds(i)
			upper := float64(BucketUpperBound(i))
			v := lo + (rank-cum)/fc*(upper-lo)
			if v < float64(s.Min) {
				v = float64(s.Min)
			}
			if v > float64(s.Max) {
				v = float64(s.Max)
			}
			return v
		}
		cum += fc
	}
	return float64(s.Max)
}

// fillQuantiles populates the fixed quantile fields from Buckets.
func (s *HistStat) fillQuantiles() {
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	s.P999 = s.Quantile(0.999)
}

// Snapshot is a point-in-time copy of every metric in a registry. It is
// the unit the run journal records and the experiment tables render.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]float64  `json:"gauges,omitempty"`
	Histograms map[string]HistStat `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistStat, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Stat()
	}
	return s
}

// Delta returns the work done between prev and s: counters and histogram
// count/sum are subtracted (entries that did not move are dropped), while
// gauges keep their current value (dropped when unchanged) and histogram
// min/max cover the whole run up to s (they are not invertible). prev may
// be the zero Snapshot, in which case Delta just drops zero-valued
// entries.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistStat{},
	}
	for name, v := range s.Counters {
		if dv := v - prev.Counters[name]; dv != 0 {
			d.Counters[name] = dv
		}
	}
	for name, v := range s.Gauges {
		if v != prev.Gauges[name] {
			d.Gauges[name] = v
		}
	}
	for name, h := range s.Histograms {
		p := prev.Histograms[name]
		dh := HistStat{Count: h.Count - p.Count, Sum: h.Sum - p.Sum, Min: h.Min, Max: h.Max}
		if dh.Count == 0 {
			continue
		}
		dh.Mean = float64(dh.Sum) / float64(dh.Count)
		// Bucket counts are cumulative and subtract cleanly, so the delta
		// carries quantiles of the work done in the window (min/max stay
		// run-wide; the clamp in Quantile still uses them as a safe hull).
		if len(h.Buckets) > 0 {
			dh.Buckets = make([]int64, len(h.Buckets))
			copy(dh.Buckets, h.Buckets)
			for i := range p.Buckets {
				if i < len(dh.Buckets) {
					dh.Buckets[i] -= p.Buckets[i]
				}
			}
			dh.fillQuantiles()
		}
		d.Histograms[name] = dh
	}
	return d
}

// Empty reports whether the snapshot carries no non-zero metric.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Metric is one named value in a flattened snapshot.
type Metric struct {
	Name  string
	Value float64
}

// Flat flattens the snapshot into name-sorted metrics suitable for table
// footers: counters and gauges verbatim, histograms as <name>.count,
// <name>.mean, and (when bucket counts are present) <name>.p50 and
// <name>.p99.
func (s Snapshot) Flat() []Metric {
	var out []Metric
	for name, v := range s.Counters {
		out = append(out, Metric{Name: name, Value: float64(v)})
	}
	for name, v := range s.Gauges {
		out = append(out, Metric{Name: name, Value: v})
	}
	for name, h := range s.Histograms {
		out = append(out, Metric{Name: name + ".count", Value: float64(h.Count)})
		out = append(out, Metric{Name: name + ".mean", Value: h.Mean})
		if len(h.Buckets) > 0 {
			out = append(out, Metric{Name: name + ".p50", Value: h.P50})
			out = append(out, Metric{Name: name + ".p99", Value: h.P99})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
