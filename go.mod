module singlingout

go 1.22
